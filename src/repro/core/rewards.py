"""The two reward systems (paper section IV-A).

Both reward a *transition*: after migrating a VM, the PM lands in a new
state, and "the total reward of any transition from s to s' is the
aggregation [of] rewards of each resource [level] of s'".

Reward **out** (sender mode) — strictly decreasing in the destination
level: ``r_Low > r_Medium > ... > r_Overload``, all positive.  Emptying
faster earns more, which is what pushes senders to sleep mode with few
migrations.

Reward **in** (recipient mode) — positive for moving *towards* overload
(PMs should be "avaricious"), but a large negative ``r_O << 0`` for
landing in Overload.  After training, a negative ``Q_in(s, a)`` means
"accepting a VM shaped like `a` while in state `s` likely ends in
overload now or soon" — the threshold-free admission test.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.states import N_LEVELS, N_STATES, UtilizationLevel, decode_state

__all__ = ["RewardOut", "RewardIn"]


def _state_reward_table(per_level: np.ndarray) -> list:
    """Precompute the total reward of every state code (sum of the
    per-resource level rewards) — reward lookups sit on the learning hot
    path, so of_state must be one list index, not a decode."""
    return [
        float(sum(per_level[int(lvl)] for lvl in decode_state(code)))
        for code in range(N_STATES)
    ]


def _validate_schedule(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.shape != (N_LEVELS,):
        raise ValueError(f"{name} needs {N_LEVELS} per-level values, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


class RewardOut:
    """Sender-mode rewards: higher for transitions to lighter states.

    Default schedule: ``r(level) = N_LEVELS - level`` (9 for Low down to
    1 for Overload) — satisfies the paper's constraint
    ``r_L > r_M > ... > r_O`` with all values positive.
    """

    def __init__(self, per_level: Sequence[float] | None = None) -> None:
        if per_level is None:
            per_level = [float(N_LEVELS - i) for i in range(N_LEVELS)]
        self.per_level = _validate_schedule(per_level, "RewardOut.per_level")
        if not np.all(np.diff(self.per_level) < 0):
            raise ValueError(
                "reward-out schedule must be strictly decreasing with level "
                f"(r_L > r_M > ... > r_O); got {self.per_level}"
            )
        if not np.all(self.per_level > 0):
            raise ValueError(f"reward-out values must all be > 0; got {self.per_level}")
        self._by_state = _state_reward_table(self.per_level)

    def of_state(self, next_state: int) -> float:
        """Total reward for landing in ``next_state`` (sum over resources)."""
        return self._by_state[next_state]

    def of_levels(self, levels: Tuple[UtilizationLevel, ...]) -> float:
        return float(sum(self.per_level[int(lvl)] for lvl in levels))


class RewardIn:
    """Recipient-mode rewards: positive below Overload, ``r_O << 0``.

    Default schedule: ``r(level) = level + 1`` for the 8 non-overload
    levels (mild encouragement to fill up) and ``r_O = -100`` — two
    orders of magnitude below the positive values, so that even a
    discounted chain of "good" transitions cannot outweigh one landing
    in Overload.
    """

    DEFAULT_OVERLOAD_PENALTY = -100.0

    def __init__(self, per_level: Sequence[float] | None = None) -> None:
        if per_level is None:
            per_level = [float(i + 1) for i in range(N_LEVELS - 1)]
            per_level.append(self.DEFAULT_OVERLOAD_PENALTY)
        self.per_level = _validate_schedule(per_level, "RewardIn.per_level")
        if not np.all(self.per_level[:-1] > 0):
            raise ValueError(
                f"reward-in values below Overload must be > 0; got {self.per_level}"
            )
        if self.per_level[-1] >= 0:
            raise ValueError(
                f"reward-in Overload value must be << 0; got {self.per_level[-1]}"
            )
        self._by_state = _state_reward_table(self.per_level)

    def of_state(self, next_state: int) -> float:
        """Total reward for the recipient landing in ``next_state``."""
        return self._by_state[next_state]

    def of_levels(self, levels: Tuple[UtilizationLevel, ...]) -> float:
        return float(sum(self.per_level[int(lvl)] for lvl in levels))
