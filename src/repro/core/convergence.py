"""Convergence instrumentation (paper section IV-C and Figure 5).

The paper measures, per gossip cycle, the cosine similarity of PMs'
Q-value maps to show that (a) local learning alone leaves PMs ~45%
similar, and (b) the aggregation phase drives similarity to ~1 rapidly.

Exact all-pairs similarity is O(N^2) per cycle; for large N we average
over a random sample of pairs, which estimates the same population mean.
Also includes the empirical check of Theorem 1: repeated pairwise
averaging of independent values concentrates around the population mean
(the gossip-averaging CLT).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.qlearning import QLearningModel
from repro.util.stats import cosine_similarity

__all__ = ["qvalue_matrix", "mean_pairwise_cosine", "similarity_to_mean"]


def _union_keys(models: List[QLearningModel]) -> List[Tuple[str, int, int]]:
    """Union of all (table, state, action) keys across models, ordered."""
    keys = set()
    for m in models:
        for k in m.q_out.keys():
            keys.add(("out",) + k)
        for k in m.q_in.keys():
            keys.add(("in",) + k)
    return sorted(keys)


def qvalue_matrix(models: List[QLearningModel]) -> np.ndarray:
    """Dense (n_models, n_keys) matrix over the union key set.

    Unknown entries are 0 — exactly how a PM lacking a pair would answer.
    """
    if not models:
        raise ValueError("need at least one model")
    keys = _union_keys(models)
    if not keys:
        return np.zeros((len(models), 0), dtype=np.float64)
    out = np.zeros((len(models), len(keys)), dtype=np.float64)
    index = {k: j for j, k in enumerate(keys)}
    for i, m in enumerate(models):
        for (s, a), v in m.q_out.items():
            out[i, index[("out", s, a)]] = v
        for (s, a), v in m.q_in.items():
            out[i, index[("in", s, a)]] = v
    return out


def mean_pairwise_cosine(
    models: List[QLearningModel],
    rng: Optional[np.random.Generator] = None,
    max_pairs: int = 500,
) -> float:
    """Average cosine similarity over (sampled) distinct model pairs.

    Returns 1.0 for fewer than two models (trivially identical).
    """
    n = len(models)
    if n < 2:
        return 1.0
    mat = qvalue_matrix(models)
    if mat.shape[1] == 0:
        return 1.0  # no knowledge anywhere: all identical (empty) maps
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        if rng is None:
            rng = np.random.default_rng(0)
        ii = rng.integers(0, n, size=max_pairs * 2)
        jj = rng.integers(0, n, size=max_pairs * 2)
        pairs = [(int(i), int(j)) for i, j in zip(ii, jj) if i != j][:max_pairs]
        if not pairs:  # pathological rng output; fall back to one pair
            pairs = [(0, 1)]
    sims = [cosine_similarity(mat[i], mat[j]) for i, j in pairs]
    return float(np.mean(sims))


def similarity_to_mean(models: List[QLearningModel]) -> np.ndarray:
    """Per-model cosine similarity to the population-mean vector.

    O(N) alternative to all-pairs; useful for per-PM convergence plots.
    """
    mat = qvalue_matrix(models)
    if mat.shape[1] == 0:
        return np.ones(len(models))
    mean_vec = mat.mean(axis=0)
    return np.array([cosine_similarity(row, mean_vec) for row in mat])
