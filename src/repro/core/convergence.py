"""Convergence instrumentation (paper section IV-C and Figure 5).

The paper measures, per gossip cycle, the cosine similarity of PMs'
Q-value maps to show that (a) local learning alone leaves PMs ~45%
similar, and (b) the aggregation phase drives similarity to ~1 rapidly.

Exact all-pairs similarity is O(N^2) per cycle; for large N we average
over a random sample of pairs, which estimates the same population mean.
Also includes the empirical check of Theorem 1: repeated pairwise
averaging of independent values concentrates around the population mean
(the gossip-averaging CLT).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.qlearning import QLearningModel
from repro.util.stats import cosine_similarity

__all__ = ["qvalue_matrix", "mean_pairwise_cosine", "similarity_to_mean"]


def _union_actions(
    models: List[QLearningModel],
) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Per-table union of observed actions, keyed by state.

    Grouping by state keeps the union a handful of C-level set merges
    instead of one tuple hash per (table, state, action) entry — this is
    the live convergence gauge's hot path.
    """
    out_states: Dict[int, Set[int]] = {}
    in_states: Dict[int, Set[int]] = {}
    for m in models:
        for dest, table in ((out_states, m.q_out), (in_states, m.q_in)):
            for state, actions in table.state_items():
                seen = dest.get(state)
                if seen is None:
                    dest[state] = set(actions)
                else:
                    seen.update(actions)
    return out_states, in_states


def _union_keys(models: List[QLearningModel]) -> List[Tuple[str, int, int]]:
    """Union of all (table, state, action) keys across models, ordered."""
    out_states, in_states = _union_actions(models)
    keys = [("out", s, a) for s, acts in out_states.items() for a in acts]
    keys += [("in", s, a) for s, acts in in_states.items() for a in acts]
    keys.sort()
    return keys


def qvalue_matrix(models: List[QLearningModel]) -> np.ndarray:
    """Dense (n_models, n_keys) matrix over the union key set.

    Unknown entries are 0 — exactly how a PM lacking a pair would answer.
    """
    if not models:
        raise ValueError("need at least one model")
    keys = _union_keys(models)
    if not keys:
        return np.zeros((len(models), 0), dtype=np.float64)
    # Column indices grouped by (table, state): the whole matrix is then
    # filled with one fancy-indexed assignment instead of one numpy
    # scalar write per entry.
    col_of: Dict[Tuple[str, int], Dict[int, int]] = {}
    for j, (prefix, s, a) in enumerate(keys):
        col_of.setdefault((prefix, s), {})[a] = j
    out = np.zeros((len(models), len(keys)), dtype=np.float64)
    cols: List[int] = []
    vals: List[float] = []
    counts = np.empty(len(models), dtype=np.intp)
    for i, m in enumerate(models):
        n_before = len(cols)
        for prefix, table in (("out", m.q_out), ("in", m.q_in)):
            for state, actions in table.state_items():
                colmap = col_of[(prefix, state)]
                cols.extend(map(colmap.__getitem__, actions))
                vals.extend(actions.values())
        counts[i] = len(cols) - n_before
    if cols:
        rows = np.repeat(np.arange(len(models)), counts)
        out[rows, np.asarray(cols, dtype=np.intp)] = vals
    return out


def mean_pairwise_cosine(
    models: List[QLearningModel],
    rng: Optional[np.random.Generator] = None,
    max_pairs: int = 500,
) -> float:
    """Average cosine similarity over (sampled) distinct model pairs.

    Returns 1.0 for fewer than two models (trivially identical).
    """
    n = len(models)
    if n < 2:
        return 1.0
    mat = qvalue_matrix(models)
    if mat.shape[1] == 0:
        return 1.0  # no knowledge anywhere: all identical (empty) maps
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs:
        ii, jj = np.triu_indices(n, k=1)
    else:
        if rng is None:
            rng = np.random.default_rng(0)
        raw_i = rng.integers(0, n, size=max_pairs * 2)
        raw_j = rng.integers(0, n, size=max_pairs * 2)
        keep = raw_i != raw_j
        # Canonicalise to unordered pairs and drop repeats: (i, j) and
        # (j, i) are the same cosine, and counting a pair twice would
        # bias the mean toward whatever the duplicated pair happens to
        # show.  np.unique sorts, so re-order by first draw to keep the
        # estimate a deterministic function of the rng alone.
        lo = np.minimum(raw_i, raw_j)[keep]
        hi = np.maximum(raw_i, raw_j)[keep]
        codes = lo * np.intp(n) + hi
        _, first = np.unique(codes, return_index=True)
        first.sort()
        first = first[:max_pairs]
        ii = lo[first]
        jj = hi[first]
        if ii.size == 0:  # pathological rng output; fall back to one pair
            ii, jj = np.array([0]), np.array([1])
    # All pairs at once: row dots + norms replace one cosine_similarity
    # call per pair, with the same zero-vector conventions (two empty
    # maps agree perfectly; empty vs non-empty do not agree at all).
    norms = np.linalg.norm(mat, axis=1)
    ni, nj = norms[ii], norms[jj]
    dots = np.einsum("ij,ij->i", mat[ii], mat[jj])
    sims = np.empty(ii.shape[0], dtype=np.float64)
    nonzero = (ni != 0.0) & (nj != 0.0)
    sims[~nonzero] = np.where((ni == 0.0) & (nj == 0.0), 1.0, 0.0)[~nonzero]
    sims[nonzero] = np.clip(dots[nonzero] / (ni[nonzero] * nj[nonzero]), -1.0, 1.0)
    return float(np.mean(sims))


def similarity_to_mean(models: List[QLearningModel]) -> np.ndarray:
    """Per-model cosine similarity to the population-mean vector.

    O(N) alternative to all-pairs; useful for per-PM convergence plots.
    """
    mat = qvalue_matrix(models)
    if mat.shape[1] == 0:
        return np.ones(len(models))
    mean_vec = mat.mean(axis=0)
    return np.array([cosine_similarity(row, mean_vec) for row in mat])
