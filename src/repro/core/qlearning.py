"""The paired (Q_out, Q_in) model and the action-selection policies.

Each PM carries one :class:`QLearningModel`: the ``phi_out`` map ranks
which VM (action) to evict from a given PM state; the ``phi_in`` map
predicts whether accepting a VM would drive the recipient into overload
now or later (negative value = reject), per section IV-A.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.qtable import QTable
from repro.core.rewards import RewardIn, RewardOut
from repro.util.io import atomic_write_json
from repro.util.validation import check_fraction

__all__ = ["QLearningConfig", "QLearningModel"]


@dataclass(frozen=True)
class QLearningConfig:
    """Hyper-parameters of the learning system.

    alpha:
        Learning rate in (0, 1]; the paper notes values < 1 blend the
        latest observation with history (stochastic environment), so the
        default is well below 1.
    gamma:
        Discount factor in [0, 1); > 0 is what makes Q_in predictive of
        *future* overload rather than only the immediate transition.
    """

    alpha: float = 0.5
    gamma: float = 0.8
    reward_out: RewardOut = field(default_factory=RewardOut)
    reward_in: RewardIn = field(default_factory=RewardIn)

    def __post_init__(self) -> None:
        check_fraction(self.alpha, "alpha")
        if self.alpha == 0.0:
            raise ValueError("alpha must be > 0 (0 would never learn)")
        check_fraction(self.gamma, "gamma")
        if self.gamma == 1.0:
            raise ValueError("gamma must be < 1 for bounded Q-values")


class QLearningModel:
    """Per-PM learned knowledge: the ``phi_out`` and ``phi_in`` maps."""

    __slots__ = ("config", "q_out", "q_in")

    def __init__(self, config: Optional[QLearningConfig] = None) -> None:
        self.config = config if config is not None else QLearningConfig()
        self.q_out = QTable()
        self.q_in = QTable()

    # -- training updates ---------------------------------------------------

    def update_out(self, state: int, action: int, next_state: int) -> float:
        """Sender-side update: reward follows the reward-*out* schedule of
        the state the sender lands in after evicting the VM."""
        reward = self.config.reward_out.of_state(next_state)
        return self.q_out.update(
            state, action, reward, next_state, self.config.alpha, self.config.gamma
        )

    def update_in(self, state: int, action: int, next_state: int) -> float:
        """Recipient-side update: reward-*in* of the post-acceptance state."""
        reward = self.config.reward_in.of_state(next_state)
        return self.q_in.update(
            state, action, reward, next_state, self.config.alpha, self.config.gamma
        )

    # -- policies (section IV-A, "Optimal Action Selection") ---------------------

    def pi_out(self, state: int, available_actions: List[int]) -> Optional[int]:
        """``argmax_a phi_out(state, a)`` over the actions of the VMs
        actually present (``a in V_p(t)``); None when the PM is empty."""
        return self.q_out.best_action(state, candidates=available_actions)

    def pi_in(self, dst_state: int, action: int) -> bool:
        """Accept (True) iff ``phi_in(dst_state, action) >= 0``.

        Unknown pairs default to 0, i.e. accept: with no evidence of
        danger the PM stays avaricious — matching the paper's rule that
        only a *negative* learned value rejects.
        """
        return self.q_in.get(dst_state, action, default=0.0) >= 0.0

    # -- aggregation support --------------------------------------------------------

    def merge(self, other: "QLearningModel") -> None:
        """Algorithm 2's UPDATE over the union map ``phi_io``.

        The union map is phi_in U phi_out; since the two live in separate
        tables keyed identically, merging table-wise is equivalent.
        """
        self.q_out.merge(other.q_out)
        self.q_in.merge(other.q_in)

    def copy(self) -> "QLearningModel":
        out = QLearningModel(self.config)
        out.q_out = self.q_out.copy()
        out.q_in = self.q_in.copy()
        return out

    def total_entries(self) -> int:
        return len(self.q_out) + len(self.q_in)

    def all_keys(self) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        """(out keys, in keys) — used to build comparison vectors."""
        return list(self.q_out.keys()), list(self.q_in.keys())

    # -- persistence ----------------------------------------------------------------
    #
    # Section IV-D: "consolidation component can be configured to either
    # continue using the previous Q-values or pause ... and resume by
    # using new Q-values" — previous Q-values must therefore be storable.

    def to_dict(self) -> Dict:
        return {"q_out": self.q_out.to_dict(), "q_in": self.q_in.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict, config: Optional[QLearningConfig] = None
                  ) -> "QLearningModel":
        unknown = set(data) - {"q_out", "q_in"}
        if unknown:
            raise ValueError(f"unknown model fields: {sorted(unknown)}")
        out = cls(config)
        out.q_out = QTable.from_dict(data.get("q_out", {}))
        out.q_in = QTable.from_dict(data.get("q_in", {}))
        return out

    def save(self, path: Union[str, Path]) -> None:
        """Write the learned Q-maps to a JSON file (atomically).

        A crash mid-write must never leave a truncated model on disk —
        Q-maps are the durable state section IV-D's pause/resume relies
        on — so the write goes through the tmp-then-rename helper.
        """
        atomic_write_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: Union[str, Path],
             config: Optional[QLearningConfig] = None) -> "QLearningModel":
        """Read Q-maps written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()), config)

    def __repr__(self) -> str:
        return f"QLearningModel(out={len(self.q_out)}, in={len(self.q_in)})"
