"""State/action calibration (paper section IV-A).

Both states (PM load) and actions (VM load) are tuples of per-resource
utilisation *levels* over the paper's 9-step scale::

    Low      x <= 0.2
    Medium   0.2 < x <= 0.4
    High     0.4 < x <= 0.5
    xHigh    0.5 < x <= 0.6
    2xHigh   0.6 < x <= 0.7
    3xHigh   0.7 < x <= 0.8
    4xHigh   0.8 < x <= 0.9
    5xHigh   0.9 < x <  1.0
    Overload x >= 1.0

With 2 resources (CPU, memory) there are ``9**2 = 81`` states and 81
actions.  States and actions are encoded as integers in ``[0, 81)`` so
Q-maps can key on plain ints.

Normalisation convention (see DESIGN.md): a PM's level is computed from
its aggregate VM demand as a fraction of *PM capacity*; a VM's
action level is computed from its demand as a fraction of *its own
spec*, so the action space spans all 9 levels even though one micro VM
is small relative to a host.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

from repro.datacenter.pm import PhysicalMachine
from repro.datacenter.resources import N_RESOURCES
from repro.datacenter.vm import VirtualMachine

__all__ = [
    "UtilizationLevel",
    "N_LEVELS",
    "N_STATES",
    "LEVEL_THRESHOLDS",
    "level_of",
    "levels_of",
    "encode_state",
    "decode_state",
    "state_of_utilization",
    "state_code_fast",
    "pm_state",
    "vm_action",
]


class UtilizationLevel(enum.IntEnum):
    """The paper's 9 calibrated utilisation levels."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2
    XHIGH = 3
    XXHIGH = 4  # "2xHigh"
    XXXHIGH = 5  # "3xHigh"
    XXXXHIGH = 6  # "4xHigh"
    XXXXXHIGH = 7  # "5xHigh"
    OVERLOAD = 8


N_LEVELS: int = len(UtilizationLevel)
N_STATES: int = N_LEVELS**N_RESOURCES

# Upper bounds of each level below OVERLOAD; level_of uses searchsorted
# over these, with x >= 1.0 mapping to OVERLOAD.
LEVEL_THRESHOLDS = np.array([0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9], dtype=np.float64)


def _level_index(x: float) -> int:
    """Bucket index of one utilisation fraction (no validation).

    Chained comparisons on a Python float — this sits on the learning
    hot path (hundreds of thousands of calls per simulated round), where
    a scalar ``np.searchsorted`` is ~10x slower.
    """
    if x >= 1.0:
        return 8  # OVERLOAD
    if x <= 0.4:
        return 0 if x <= 0.2 else 1  # LOW / MEDIUM
    if x <= 0.7:
        if x <= 0.5:
            return 2  # HIGH
        return 3 if x <= 0.6 else 4  # XHIGH / 2xHIGH
    if x <= 0.8:
        return 5  # 3xHIGH
    return 6 if x <= 0.9 else 7  # 4xHIGH / 5xHIGH


def level_of(x: float) -> UtilizationLevel:
    """Map one utilisation fraction to its level.

    Exactly the paper's bucket boundaries: ``x <= 0.2`` is Low,
    left-open/right-closed buckets up to ``0.9 < x < 1`` (5xHigh), and
    ``x >= 1.0`` is Overload (demand at or beyond capacity).
    """
    if x < 0.0 or x != x or x == float("inf"):
        raise ValueError(f"utilisation must be finite and >= 0, got {x!r}")
    return UtilizationLevel(_level_index(x))


def levels_of(utilization: np.ndarray) -> Tuple[UtilizationLevel, ...]:
    """Per-resource levels for a utilisation vector."""
    u = np.asarray(utilization, dtype=np.float64)
    if u.shape != (N_RESOURCES,):
        raise ValueError(f"expected shape ({N_RESOURCES},), got {u.shape}")
    return tuple(level_of(float(x)) for x in u)


def encode_state(levels: Tuple[UtilizationLevel, ...]) -> int:
    """Pack per-resource levels into one int in ``[0, N_STATES)``."""
    if len(levels) != N_RESOURCES:
        raise ValueError(f"expected {N_RESOURCES} levels, got {len(levels)}")
    code = 0
    for lvl in levels:
        iv = int(lvl)
        if not 0 <= iv < N_LEVELS:
            raise ValueError(f"invalid level {lvl!r}")
        code = code * N_LEVELS + iv
    return code


def decode_state(code: int) -> Tuple[UtilizationLevel, ...]:
    """Inverse of :func:`encode_state`."""
    if not 0 <= code < N_STATES:
        raise ValueError(f"state code must be in [0, {N_STATES}), got {code}")
    levels = []
    for _ in range(N_RESOURCES):
        levels.append(UtilizationLevel(code % N_LEVELS))
        code //= N_LEVELS
    return tuple(reversed(levels))


def state_of_utilization(utilization: np.ndarray) -> int:
    """Encode a utilisation vector directly to a state/action code."""
    return encode_state(levels_of(utilization))


def state_code_fast(u0: float, u1: float) -> int:
    """Hot-path state encoding for the 2-resource build: no enum objects,
    no array allocation.  Callers must pass finite values >= 0."""
    return _level_index(u0) * N_LEVELS + _level_index(u1)


def pm_state(pm: PhysicalMachine, *, use_average: bool = True) -> int:
    """A PM's state code.

    Section IV-B: the state *before* performing an action is calculated
    from the **average** VM demands (default); the state *after* an
    action uses the **current** demands (pass ``use_average=False``).
    Utilisation is deliberately uncapped here so that aggregate demand
    beyond capacity lands in Overload.
    """
    u = pm.utilization(use_average=use_average, cap=False)
    return state_of_utilization(u)


def vm_action(vm: VirtualMachine, *, use_average: bool = True) -> int:
    """A VM's action code, from demand relative to its own spec."""
    frac = vm.monitor.average if use_average else vm.monitor.current
    return state_of_utilization(frac)
