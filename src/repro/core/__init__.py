"""GLAP — the paper's primary contribution.

The core package implements section IV of the paper:

* :mod:`~repro.core.states` — calibration of PM/VM load into the 9-level
  per-resource scale, and the (state, action) encoding;
* :mod:`~repro.core.rewards` — the two incentive systems, reward *out*
  (empty PMs fast) and reward *in* (predict and refuse future overload);
* :mod:`~repro.core.qtable` — sparse state-action value maps with the
  Q-learning update and the gossip merge;
* :mod:`~repro.core.qlearning` — the paired (Q_out, Q_in) model and the
  action-selection policies pi_out / pi_in;
* :mod:`~repro.core.learning` — Algorithm 1, the local training phase;
* :mod:`~repro.core.aggregation` — Algorithm 2, the gossip averaging;
* :mod:`~repro.core.consolidation` — Algorithm 3, gossip consolidation;
* :mod:`~repro.core.glap` — wiring of all components onto a simulation;
* :mod:`~repro.core.convergence` — Figure 5 / Theorem 1 instrumentation.
"""

from repro.core.states import (
    N_LEVELS,
    N_STATES,
    UtilizationLevel,
    level_of,
    levels_of,
    encode_state,
    decode_state,
    state_of_utilization,
    pm_state,
    vm_action,
)
from repro.core.rewards import RewardOut, RewardIn
from repro.core.qtable import QTable
from repro.core.qlearning import QLearningConfig, QLearningModel
from repro.core.learning import VmProfile, LocalTrainer, GossipLearningProtocol
from repro.core.aggregation import QAggregationProtocol, merge_qtables
from repro.core.consolidation import GlapConsolidationProtocol
from repro.core.glap import GlapConfig, GlapPolicy
from repro.core.convergence import mean_pairwise_cosine, qvalue_matrix

__all__ = [
    "N_LEVELS",
    "N_STATES",
    "UtilizationLevel",
    "level_of",
    "levels_of",
    "encode_state",
    "decode_state",
    "state_of_utilization",
    "pm_state",
    "vm_action",
    "RewardOut",
    "RewardIn",
    "QTable",
    "QLearningConfig",
    "QLearningModel",
    "VmProfile",
    "LocalTrainer",
    "GossipLearningProtocol",
    "QAggregationProtocol",
    "merge_qtables",
    "GlapConsolidationProtocol",
    "GlapConfig",
    "GlapPolicy",
    "mean_pairwise_cosine",
    "qvalue_matrix",
]
