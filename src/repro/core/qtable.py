"""Sparse state-action value maps with the Q-learning update and the
gossip merge.

A :class:`QTable` stores only the (state, action) pairs that have been
observed — the paper's Algorithm 2 distinguishes "exists in both maps"
from "in only one PM", so sparsity is semantically load-bearing, not an
optimisation.  Internally it is a dict of ``state -> {action: q}`` so
that ``max_a Q(s', a)`` (needed by every update) is O(actions of s').
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.states import N_STATES
from repro.util.validation import check_fraction

__all__ = ["QTable"]


class QTable:
    """A sparse ``Q: (state, action) -> value`` map."""

    __slots__ = ("_by_state",)

    def __init__(self) -> None:
        self._by_state: Dict[int, Dict[int, float]] = {}

    # -- access -------------------------------------------------------------

    def get(self, state: int, action: int, default: float = 0.0) -> float:
        actions = self._by_state.get(state)
        if actions is None:
            return default
        return actions.get(action, default)

    def has(self, state: int, action: int) -> bool:
        actions = self._by_state.get(state)
        return actions is not None and action in actions

    def set(self, state: int, action: int, value: float) -> None:
        self._check_key(state, action)
        self._by_state.setdefault(state, {})[action] = float(value)

    def max_value(self, state: int) -> float:
        """``max_a Q(state, a)`` over *known* actions; 0.0 when none.

        Zero is the optimistic-neutral default: an unexplored successor
        state contributes no future value either way.
        """
        actions = self._by_state.get(state)
        if not actions:
            return 0.0
        return max(actions.values())

    def best_action(self, state: int, candidates: Optional[List[int]] = None) -> Optional[int]:
        """Argmax action for ``state``.

        With ``candidates``, restricts the argmax to that list treating
        unknown pairs as 0.0 (the paper's pi_out restricts to the VMs
        actually available, some of which may be unexplored); ties break
        to the lowest action code for determinism.  Without
        ``candidates``, considers known actions only and returns None
        for an unknown state.
        """
        if candidates is not None:
            if not candidates:
                return None
            return min(candidates, key=lambda a: (-self.get(state, a), a))
        actions = self._by_state.get(state)
        if not actions:
            return None
        return min(actions, key=lambda a: (-actions[a], a))

    # -- learning -------------------------------------------------------------

    def update(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        alpha: float,
        gamma: float,
    ) -> float:
        """The Q-learning update (paper eq. 1)::

            Q_{t+1}(s, a) = (1 - alpha) Q_t(s, a)
                            + alpha (R + gamma * max_a' Q_t(s', a'))

        Returns the new value.  An unknown (s, a) starts from 0.
        """
        check_fraction(alpha, "alpha")
        check_fraction(gamma, "gamma")
        old = self.get(state, action)
        target = reward + gamma * self.max_value(next_state)
        new = (1.0 - alpha) * old + alpha * target
        self.set(state, action, new)
        return new

    # -- gossip merge (Algorithm 2's UPDATE) --------------------------------------

    def merge(self, other: "QTable") -> None:
        """Symmetric-in-content merge of ``other`` into ``self``.

        For every pair present in both maps the value becomes the
        average; a pair present only in ``other`` is copied.  (Pairs only
        in ``self`` keep their value — the peer applies the same rule on
        its own copy, so after one exchange both sides hold identical
        maps.)
        """
        for state, their_actions in other._by_state.items():
            mine = self._by_state.setdefault(state, {})
            for action, theirs in their_actions.items():
                if action in mine:
                    mine[action] = 0.5 * (mine[action] + theirs)
                else:
                    mine[action] = theirs

    # -- introspection ---------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[int, int], float]]:
        for state, actions in self._by_state.items():
            for action, value in actions.items():
                yield (state, action), value

    def keys(self) -> Iterator[Tuple[int, int]]:
        for state, actions in self._by_state.items():
            for action in actions:
                yield (state, action)

    def states(self) -> List[int]:
        return list(self._by_state.keys())

    def __len__(self) -> int:
        return sum(len(a) for a in self._by_state.values())

    def copy(self) -> "QTable":
        out = QTable()
        out._by_state = {s: dict(a) for s, a in self._by_state.items()}
        return out

    def to_vector(self, keys: List[Tuple[int, int]]) -> np.ndarray:
        """Dense projection onto an explicit key order (0 for unknown) —
        used to compare tables across PMs (cosine similarity)."""
        return np.array([self.get(s, a) for (s, a) in keys], dtype=np.float64)

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe representation: {state: {action: value}} with string keys."""
        return {
            str(s): {str(a): v for a, v in actions.items()}
            for s, actions in self._by_state.items()
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, float]]) -> "QTable":
        """Inverse of :meth:`to_dict`, with key validation."""
        out = cls()
        for s_str, actions in data.items():
            for a_str, v in actions.items():
                out.set(int(s_str), int(a_str), float(v))
        return out

    @staticmethod
    def _check_key(state: int, action: int) -> None:
        if not 0 <= state < N_STATES:
            raise ValueError(f"state must be in [0, {N_STATES}), got {state}")
        if not 0 <= action < N_STATES:
            raise ValueError(f"action must be in [0, {N_STATES}), got {action}")

    def __repr__(self) -> str:
        return f"QTable(entries={len(self)}, states={len(self._by_state)})"
