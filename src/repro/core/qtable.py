"""Sparse state-action value maps with the Q-learning update and the
gossip merge.

A :class:`QTable` stores only the (state, action) pairs that have been
observed — the paper's Algorithm 2 distinguishes "exists in both maps"
from "in only one PM", so sparsity is semantically load-bearing, not an
optimisation.  Internally it is a dict of ``state -> {action: q}`` so
that ``max_a Q(s', a)`` (needed by every update) is O(actions of s').
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.states import N_STATES

__all__ = ["QTable"]


class QTable:
    """A sparse ``Q: (state, action) -> value`` map."""

    __slots__ = ("_by_state",)

    def __init__(self) -> None:
        self._by_state: Dict[int, Dict[int, float]] = {}

    # -- access -------------------------------------------------------------

    def get(self, state: int, action: int, default: float = 0.0) -> float:
        actions = self._by_state.get(state)
        if actions is None:
            return default
        return actions.get(action, default)

    def has(self, state: int, action: int) -> bool:
        actions = self._by_state.get(state)
        return actions is not None and action in actions

    def set(self, state: int, action: int, value: float) -> None:
        self._check_key(state, action)
        self._by_state.setdefault(state, {})[action] = float(value)

    def max_value(self, state: int) -> float:
        """``max_a Q(state, a)`` over *known* actions; 0.0 when none.

        Zero is the optimistic-neutral default: an unexplored successor
        state contributes no future value either way.
        """
        actions = self._by_state.get(state)
        if not actions:
            return 0.0
        return max(actions.values())

    def best_action(self, state: int, candidates: Optional[List[int]] = None) -> Optional[int]:
        """Argmax action for ``state``.

        With ``candidates``, restricts the argmax to that list treating
        unknown pairs as 0.0 (the paper's pi_out restricts to the VMs
        actually available, some of which may be unexplored); ties break
        to the lowest action code for determinism.  Without
        ``candidates``, considers known actions only and returns None
        for an unknown state.
        """
        if candidates is not None:
            if not candidates:
                return None
            return min(candidates, key=lambda a: (-self.get(state, a), a))
        actions = self._by_state.get(state)
        if not actions:
            return None
        return min(actions, key=lambda a: (-actions[a], a))

    # -- learning -------------------------------------------------------------

    def update(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        alpha: float,
        gamma: float,
    ) -> float:
        """The Q-learning update (paper eq. 1)::

            Q_{t+1}(s, a) = (1 - alpha) Q_t(s, a)
                            + alpha (R + gamma * max_a' Q_t(s', a'))

        Returns the new value.  An unknown (s, a) starts from 0.
        """
        # Inlined check_fraction: update() is the training hot path, and
        # the comparison also rejects NaN (any comparison is False).
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be within [0, 1], got {alpha!r}")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be within [0, 1], got {gamma!r}")
        self._check_key(state, action)
        # get / max_value / set, inlined (the method-call overhead is
        # measurable at hundreds of thousands of updates per run).
        by_state = self._by_state
        actions = by_state.get(state)
        old = actions.get(action, 0.0) if actions is not None else 0.0
        nxt = by_state.get(next_state)
        best_next = max(nxt.values()) if nxt else 0.0
        new = (1.0 - alpha) * old + alpha * (reward + gamma * best_next)
        if actions is None:
            by_state[state] = {action: float(new)}
        else:
            actions[action] = float(new)
        return new

    # -- gossip merge (Algorithm 2's UPDATE) --------------------------------------

    def merge(self, other: "QTable") -> None:
        """Symmetric-in-content merge of ``other`` into ``self``.

        For every pair present in both maps the value becomes the
        average; a pair present only in ``other`` is copied.  (Pairs only
        in ``self`` keep their value — the peer applies the same rule on
        its own copy, so after one exchange both sides hold identical
        maps.)
        """
        for state, their_actions in other._by_state.items():
            mine = self._by_state.get(state)
            if mine is None:
                # Whole state known only to the peer: bulk copy.
                self._by_state[state] = dict(their_actions)
                continue
            for action, theirs in their_actions.items():
                ours = mine.get(action)
                mine[action] = theirs if ours is None else 0.5 * (ours + theirs)

    # -- keyed partitioning (bandwidth-aware gossip) --------------------------------

    @staticmethod
    def bucket_of(state: int, action: int, n_buckets: int) -> int:
        """Deterministic bucket of a (state, action) pair.

        A fixed multiplicative hash (Knuth's 2654435761 and a Mersenne
        prime) decorrelates the bucket from the raw key arithmetic, so
        states that arrive in contiguous runs still spread across
        buckets.  Pure integer maths — stable across processes and
        Python versions, unlike ``hash``.
        """
        return ((state * 2654435761) ^ (action * 8191)) % n_buckets

    def partition(self, n_buckets: int, bucket: int) -> "QTable":
        """The sub-table of pairs hashing to ``bucket`` of ``n_buckets``.

        ``partition(k, 0) .. partition(k, k-1)`` are disjoint and their
        union is the whole table; ``partition(1, 0)`` is a full copy.
        Entries keep their insertion order, so a ``k == 1`` slice merges
        exactly like the original table.
        """
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be > 0, got {n_buckets}")
        if not 0 <= bucket < n_buckets:
            raise ValueError(
                f"bucket must be in [0, {n_buckets}), got {bucket}"
            )
        out = QTable()
        if n_buckets == 1:
            out._by_state = {s: dict(a) for s, a in self._by_state.items()}
            return out
        for state, actions in self._by_state.items():
            sub = {
                action: value
                for action, value in actions.items()
                if self.bucket_of(state, action, n_buckets) == bucket
            }
            if sub:
                out._by_state[state] = sub
        return out

    def bucket_len(self, n_buckets: int, bucket: int) -> int:
        """Entry count of :meth:`partition` without building the slice."""
        if n_buckets == 1:
            return len(self)
        return sum(
            1
            for state, actions in self._by_state.items()
            for action in actions
            if self.bucket_of(state, action, n_buckets) == bucket
        )

    def absorb(self, other: "QTable") -> None:
        """Overwrite-adopt every entry of ``other`` into this table.

        The write-back half of a partitioned exchange: the merged slice's
        values replace (or add) the corresponding entries here, leaving
        all other buckets untouched.
        """
        for state, their_actions in other._by_state.items():
            mine = self._by_state.get(state)
            if mine is None:
                self._by_state[state] = dict(their_actions)
            else:
                mine.update(their_actions)

    # -- introspection ---------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[int, int], float]]:
        for state, actions in self._by_state.items():
            for action, value in actions.items():
                yield (state, action), value

    def keys(self) -> Iterator[Tuple[int, int]]:
        for state, actions in self._by_state.items():
            for action in actions:
                yield (state, action)

    def states(self) -> List[int]:
        return list(self._by_state.keys())

    def state_items(self) -> Iterator[Tuple[int, Dict[int, float]]]:
        """(state, {action: q}) pairs — bulk read-out for vectorized
        consumers (the convergence matrix).  The inner dicts are live
        views; callers must not mutate them."""
        return iter(self._by_state.items())

    def __len__(self) -> int:
        return sum(len(a) for a in self._by_state.values())

    def copy(self) -> "QTable":
        out = QTable()
        out._by_state = {s: dict(a) for s, a in self._by_state.items()}
        return out

    def copy_from(self, other: "QTable") -> None:
        """Replace this table's content with a copy of ``other``'s.

        Equivalent to ``set``-ting every entry of ``other`` onto a table
        whose keys are a subset of ``other``'s — the push-pull adoption
        step of the gossip merge — but in one dict copy instead of a
        per-entry loop.
        """
        self._by_state = {s: dict(a) for s, a in other._by_state.items()}

    def to_vector(self, keys: List[Tuple[int, int]]) -> np.ndarray:
        """Dense projection onto an explicit key order (0 for unknown) —
        used to compare tables across PMs (cosine similarity)."""
        return np.array([self.get(s, a) for (s, a) in keys], dtype=np.float64)

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe representation: {state: {action: value}} with string keys."""
        return {
            str(s): {str(a): v for a, v in actions.items()}
            for s, actions in self._by_state.items()
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, float]]) -> "QTable":
        """Inverse of :meth:`to_dict`, with key validation."""
        out = cls()
        for s_str, actions in data.items():
            for a_str, v in actions.items():
                out.set(int(s_str), int(a_str), float(v))
        return out

    @staticmethod
    def _check_key(state: int, action: int) -> None:
        if not 0 <= state < N_STATES:
            raise ValueError(f"state must be in [0, {N_STATES}), got {state}")
        if not 0 <= action < N_STATES:
            raise ValueError(f"action must be in [0, {N_STATES}), got {action}")

    def __repr__(self) -> str:
        return f"QTable(entries={len(self)}, states={len(self._by_state)})"
