"""Offline Best-Fit-Decreasing packing — the Figure 6 baseline.

The paper: "We calculated BFD using the VMs resource utilization of the
last round to determine a baseline packing without producing any SLA
violation."  This is a pure function of a demand snapshot: pack the VMs'
current absolute demands into as few PMs as possible such that no PM
exceeds capacity in any resource.

Two-resource best fit: VMs sorted by descending demand magnitude; each
VM goes to the open PM with the least *remaining* normalised slack that
still fits (the classic best-fit rule generalised to vectors via the sum
of per-resource residuals); a new PM opens when none fits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datacenter.cluster import DataCenter
from repro.datacenter.resources import N_RESOURCES

__all__ = ["bfd_pack", "bfd_baseline_active_pms"]


def bfd_pack(demands: np.ndarray, capacity: np.ndarray) -> List[List[int]]:
    """Pack item demand vectors into vector-capacity bins.

    Parameters
    ----------
    demands:
        ``(n_items, N_RESOURCES)`` absolute demands.
    capacity:
        Per-bin capacity vector.

    Returns
    -------
    A list of bins, each a list of item indices.  An item whose demand
    exceeds a whole empty bin in some resource gets a bin of its own
    (it violates capacity alone; nothing better exists).
    """
    demands = np.asarray(demands, dtype=np.float64)
    capacity = np.asarray(capacity, dtype=np.float64)
    if demands.ndim != 2 or demands.shape[1] != N_RESOURCES:
        raise ValueError(f"demands must be (n, {N_RESOURCES}), got {demands.shape}")
    if capacity.shape != (N_RESOURCES,):
        raise ValueError(f"capacity must be ({N_RESOURCES},), got {capacity.shape}")
    if np.any(demands < 0):
        raise ValueError("demands must be >= 0")

    # Decreasing order of total normalised size (the "D" in BFD).
    sizes = (demands / capacity).sum(axis=1)
    order = np.argsort(-sizes, kind="stable")

    # Open-bin residuals live in pre-sized per-resource columns so the
    # best-fit scan is a handful of whole-array ops instead of a Python
    # loop over bins.  Selection semantics match the scalar scan
    # exactly: a bin fits iff the item is <= its residual in every
    # resource; slack is (res0-i0)/c0 + (res1-i1)/c1 — the same
    # left-to-right sum the row-wise ``((res-item)/capacity).sum()``
    # computed; slack is evaluated only on the fitting subset, whose
    # ascending bin order makes ``argmin`` return the lowest-indexed
    # minimum exactly as the strict ``<`` update did.
    n = demands.shape[0]
    res = [np.empty(n, dtype=np.float64) for _ in range(N_RESOURCES)]
    fit_buf = np.empty(n, dtype=bool)
    tmp_buf = np.empty(n, dtype=bool)
    cap = [float(c) for c in capacity]
    bins: List[List[int]] = []
    n_open = 0
    for idx in order:
        item = [float(d) for d in demands[idx]]
        best_bin = -1
        if n_open:
            fits = np.greater_equal(res[0][:n_open], item[0], out=fit_buf[:n_open])
            for r in range(1, N_RESOURCES):
                fits &= np.greater_equal(res[r][:n_open], item[r], out=tmp_buf[:n_open])
            cand = np.flatnonzero(fits)
            if cand.size:
                slack = (res[0][cand] - item[0]) / cap[0]
                for r in range(1, N_RESOURCES):
                    slack += (res[r][cand] - item[r]) / cap[r]
                best_bin = int(cand[np.argmin(slack)])
        if best_bin < 0:
            bins.append([int(idx)])
            for r in range(N_RESOURCES):
                res[r][n_open] = cap[r] - item[r]
            n_open += 1
        else:
            bins[best_bin].append(int(idx))
            for r in range(N_RESOURCES):
                res[r][best_bin] -= item[r]
    return bins


def bfd_baseline_active_pms(dc: DataCenter) -> int:
    """Minimum active PMs per BFD on *current* VM demands (Figure 6)."""
    if dc.n_vms == 0:
        return 0
    # One whole-array multiply == row-wise vm.current_demand_abs().
    demands = dc._cur * dc._vm_cap
    capacity = dc.pms[0].spec.capacity_vector()
    return len(bfd_pack(demands, capacity))
