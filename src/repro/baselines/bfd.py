"""Offline Best-Fit-Decreasing packing — the Figure 6 baseline.

The paper: "We calculated BFD using the VMs resource utilization of the
last round to determine a baseline packing without producing any SLA
violation."  This is a pure function of a demand snapshot: pack the VMs'
current absolute demands into as few PMs as possible such that no PM
exceeds capacity in any resource.

Two-resource best fit: VMs sorted by descending demand magnitude; each
VM goes to the open PM with the least *remaining* normalised slack that
still fits (the classic best-fit rule generalised to vectors via the sum
of per-resource residuals); a new PM opens when none fits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datacenter.cluster import DataCenter
from repro.datacenter.resources import N_RESOURCES

__all__ = ["bfd_pack", "bfd_baseline_active_pms"]


def bfd_pack(demands: np.ndarray, capacity: np.ndarray) -> List[List[int]]:
    """Pack item demand vectors into vector-capacity bins.

    Parameters
    ----------
    demands:
        ``(n_items, N_RESOURCES)`` absolute demands.
    capacity:
        Per-bin capacity vector.

    Returns
    -------
    A list of bins, each a list of item indices.  An item whose demand
    exceeds a whole empty bin in some resource gets a bin of its own
    (it violates capacity alone; nothing better exists).
    """
    demands = np.asarray(demands, dtype=np.float64)
    capacity = np.asarray(capacity, dtype=np.float64)
    if demands.ndim != 2 or demands.shape[1] != N_RESOURCES:
        raise ValueError(f"demands must be (n, {N_RESOURCES}), got {demands.shape}")
    if capacity.shape != (N_RESOURCES,):
        raise ValueError(f"capacity must be ({N_RESOURCES},), got {capacity.shape}")
    if np.any(demands < 0):
        raise ValueError("demands must be >= 0")

    # Decreasing order of total normalised size (the "D" in BFD).
    sizes = (demands / capacity).sum(axis=1)
    order = np.argsort(-sizes, kind="stable")

    bins: List[List[int]] = []
    residuals: List[np.ndarray] = []
    for idx in order:
        item = demands[idx]
        best_bin = -1
        best_slack = np.inf
        for b, res in enumerate(residuals):
            if np.all(item <= res):
                slack = float(((res - item) / capacity).sum())
                if slack < best_slack:
                    best_slack = slack
                    best_bin = b
        if best_bin < 0:
            bins.append([int(idx)])
            residuals.append(capacity - item)
        else:
            bins[best_bin].append(int(idx))
            residuals[best_bin] -= item
    return bins


def bfd_baseline_active_pms(dc: DataCenter) -> int:
    """Minimum active PMs per BFD on *current* VM demands (Figure 6)."""
    if dc.n_vms == 0:
        return 0
    demands = np.vstack([vm.current_demand_abs() for vm in dc.vms])
    capacity = dc.pms[0].spec.capacity_vector()
    return len(bfd_pack(demands, capacity))
