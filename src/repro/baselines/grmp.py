"""GRMP baseline — aggressive gossip packing with a static threshold.

The paper evaluates GRMP (Wuhib, Yanggratoke & Stadler's gossip resource
management protocol) as "an aggressive gossip based protocol with a
static upper threshold 0.8".  Per round each PM gossips with one random
neighbour; the pair then rebalances *aggressively*: the less-utilised PM
pushes its VMs onto the other for as long as the receiver's projected
utilisation stays at or below the threshold in every resource, switching
itself off when it empties.  Overload relief follows the same rule: an
overloaded PM pushes VMs out until it drops below the threshold.

The pathology the paper highlights (Figure 1) is visible by design:
admission is judged on *current* demand against a static bound, so a
receiver filled to 0.79 overloads as soon as its tenants' demand rises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.baselines.base import ConsolidationPolicy
from repro.datacenter.cluster import DataCenter
from repro.datacenter.pm import PhysicalMachine
from repro.datacenter.vm import VirtualMachine
from repro.overlay.cyclon import CyclonProtocol
from repro.overlay.sampler import PeerSampler
from repro.simulator.protocol import Protocol
from repro.util.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.engine import Simulation
    from repro.simulator.node import Node
    from repro.util.rng import RngStreams

__all__ = ["GrmpConfig", "GrmpProtocol", "GrmpPolicy"]


@dataclass(frozen=True)
class GrmpConfig:
    """Static-threshold gossip packing knobs (paper: threshold = 0.8)."""

    upper_threshold: float = 0.8
    view_size: int = 20
    shuffle_len: int = 8
    max_migrations_per_exchange: int = 64

    def __post_init__(self) -> None:
        check_fraction(self.upper_threshold, "upper_threshold")
        if self.upper_threshold == 0.0:
            raise ValueError("upper_threshold must be > 0")


class GrmpProtocol(Protocol):
    """The per-round gossip exchange."""

    def __init__(self, dc: DataCenter, sampler: PeerSampler, config: GrmpConfig) -> None:
        self.dc = dc
        self.sampler = sampler
        self.config = config
        self.enabled = False  # consolidation starts after warmup
        self.switch_offs = 0

    def execute_round(self, node: "Node", sim: "Simulation") -> None:
        if not self.enabled:
            return
        peer_id = self.sampler.select_peer(node, sim)
        if peer_id is None:
            return
        if not sim.network.exchange_ok(node.node_id, peer_id, "grmp/state", size_bytes=32):
            return
        p: PhysicalMachine = node.payload
        q: PhysicalMachine = sim.node(peer_id).payload

        if p.is_overloaded():
            self._relieve(p, q, sim)
            return
        # Aggressive packing: lower-utilisation side empties into the other.
        sender, receiver = (p, q) if p.total_utilization() <= q.total_utilization() else (q, p)
        self._pack(sender, receiver, sim)

    # -- internals -------------------------------------------------------------

    def _admits(self, receiver: PhysicalMachine, vm: VirtualMachine) -> bool:
        """Static rule: receiver's projected current utilisation <= T."""
        after = receiver.demand_vector() + vm.current_demand_abs()
        limit = receiver.spec.capacity_vector() * self.config.upper_threshold
        return bool(np.all(after <= limit))

    def _largest_first(self, pm: PhysicalMachine) -> list:
        """Sender's eviction order: largest current CPU demand first —
        emptying big consumers first frees the sender fastest."""
        return sorted(
            pm.vms, key=lambda v: (-v.current_demand_abs()[0], v.vm_id)
        )

    def _pack(self, sender: PhysicalMachine, receiver: PhysicalMachine, sim: "Simulation") -> None:
        if receiver.asleep or sender.asleep:
            return
        moved = 0
        for vm in self._largest_first(sender):
            if moved >= self.config.max_migrations_per_exchange:
                break
            if not self._admits(receiver, vm):
                continue  # try a smaller VM; aggressive = fill every gap
            self.dc.migrate(vm.vm_id, receiver.pm_id)
            moved += 1
        if sender.is_empty and not sender.asleep:
            sender.asleep = True
            n = sim.node(sender.pm_id)
            if n.is_up:
                n.sleep()
            self.switch_offs += 1
            if sim.tracer.enabled:
                sim.tracer.emit("pm_sleep", sim.round_index, sender.pm_id)

    def _relieve(self, sender: PhysicalMachine, receiver: PhysicalMachine, sim: "Simulation") -> None:
        if receiver.asleep:
            return
        moved = 0
        while (
            sender.is_overloaded()
            and not sender.is_empty
            and moved < self.config.max_migrations_per_exchange
        ):
            candidates = [vm for vm in self._largest_first(sender) if self._admits(receiver, vm)]
            if not candidates:
                break
            self.dc.migrate(candidates[0].vm_id, receiver.pm_id)
            moved += 1


class GrmpPolicy(ConsolidationPolicy):
    """GRMP wired onto a simulation (Cyclon + the exchange protocol)."""

    name = "GRMP"

    def __init__(self, config: Optional[GrmpConfig] = None) -> None:
        self.config = config if config is not None else GrmpConfig()
        self.protocol: Optional[GrmpProtocol] = None
        self.cyclon: Optional[CyclonProtocol] = None

    def attach(self, dc: DataCenter, sim: "Simulation", streams: "RngStreams",
               warmup_rounds: int) -> None:
        node_ids = [n.node_id for n in sim.nodes]
        self.cyclon = CyclonProtocol(
            view_size=min(self.config.view_size, len(node_ids) - 1),
            shuffle_len=min(self.config.shuffle_len, self.config.view_size, len(node_ids) - 1),
            rng=streams.get("grmp/cyclon"),
        )
        self.cyclon.bootstrap_random(node_ids)
        self.protocol = GrmpProtocol(dc, self.cyclon, self.config)
        for node in sim.nodes:
            node.register("cyclon", self.cyclon)
            node.register("grmp", self.protocol)
        if sim.telemetry.enabled:
            sim.telemetry.register_counters(
                "grmp",
                lambda: {"switch_offs": float(self.protocol.switch_offs)},
            )

    def end_warmup(self, dc: DataCenter, sim: "Simulation") -> None:
        assert self.protocol is not None, "attach() must run first"
        self.protocol.enabled = True

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        assert self.protocol is not None and self.cyclon is not None
        return {
            "cyclon": self.cyclon.state_dict(),
            "enabled": self.protocol.enabled,
            "switch_offs": self.protocol.switch_offs,
        }

    def load_state_dict(self, state: dict) -> None:
        assert self.protocol is not None and self.cyclon is not None
        self.cyclon.load_state_dict(state["cyclon"])
        self.protocol.enabled = bool(state["enabled"])
        self.protocol.switch_offs = int(state["switch_offs"])
