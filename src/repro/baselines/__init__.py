"""Consolidation policies the paper compares against.

* :mod:`~repro.baselines.grmp` — GRMP [Wuhib et al.]: aggressive gossip
  packing with a static 0.8 upper threshold;
* :mod:`~repro.baselines.ecocloud` — EcoCloud [Mastroianni et al.]:
  probabilistic gradual thresholds (T1 = 0.3, T2 = 0.8) with Bernoulli
  accept trials;
* :mod:`~repro.baselines.pabfd` — PABFD [Beloglazov & Buyya]: the
  centralised power-aware best-fit-decreasing heuristic with a
  MAD-adaptive overload threshold;
* :mod:`~repro.baselines.bfd` — the offline Best-Fit-Decreasing packing
  used as the no-SLA-violation packing baseline of Figure 6;
* :mod:`~repro.baselines.thresholds` — MAD / IQR robust threshold
  estimators.

All policies implement :class:`~repro.baselines.base.ConsolidationPolicy`
so the experiment runner treats GLAP and baselines uniformly.
"""

from repro.baselines.base import ConsolidationPolicy
from repro.baselines.thresholds import mad, iqr, mad_upper_threshold, iqr_upper_threshold
from repro.baselines.bfd import bfd_pack, bfd_baseline_active_pms
from repro.baselines.grmp import GrmpConfig, GrmpPolicy, GrmpProtocol
from repro.baselines.ecocloud import EcoCloudConfig, EcoCloudPolicy, EcoCloudProtocol
from repro.baselines.pabfd import PabfdConfig, PabfdPolicy, PabfdController

__all__ = [
    "ConsolidationPolicy",
    "mad",
    "iqr",
    "mad_upper_threshold",
    "iqr_upper_threshold",
    "bfd_pack",
    "bfd_baseline_active_pms",
    "GrmpConfig",
    "GrmpPolicy",
    "GrmpProtocol",
    "EcoCloudConfig",
    "EcoCloudPolicy",
    "EcoCloudProtocol",
    "PabfdConfig",
    "PabfdPolicy",
    "PabfdController",
]
