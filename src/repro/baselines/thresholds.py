"""Robust statistical threshold estimators (Beloglazov & Buyya 2012).

PABFD's adaptive upper utilisation threshold is derived from historical
CPU utilisation with robust dispersion statistics: the Median Absolute
Deviation (the paper's configuration) or the Inter-Quartile Range.

``T_upper = 1 - s * MAD``   (safety parameter s; B&B use s = 2.58)
``T_upper = 1 - s * IQR``   (s = 1.5 in B&B's IQR variant)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import check_fraction, check_non_negative

__all__ = ["mad", "iqr", "mad_upper_threshold", "iqr_upper_threshold"]


def mad(samples: Sequence[float]) -> float:
    """Median absolute deviation: ``median(|x - median(x)|)``."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("mad of an empty sample set")
    med = np.median(arr)
    return float(np.median(np.abs(arr - med)))


def iqr(samples: Sequence[float]) -> float:
    """Inter-quartile range: ``Q3 - Q1``."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("iqr of an empty sample set")
    q1, q3 = np.percentile(arr, [25.0, 75.0])
    return float(q3 - q1)


def _upper(dispersion: float, safety: float, floor: float) -> float:
    """Clamp ``1 - safety * dispersion`` into [floor, 1]."""
    t = 1.0 - safety * dispersion
    return float(min(1.0, max(floor, t)))


def mad_upper_threshold(
    history: Sequence[float], safety: float = 2.58, floor: float = 0.5
) -> float:
    """Adaptive upper threshold from CPU history via MAD.

    ``floor`` guards against degenerate histories (huge dispersion would
    otherwise drive the threshold to 0 and declare everything
    overloaded).  With an empty/short history, returns 1.0 (no basis to
    restrict yet).
    """
    check_non_negative(safety, "safety")
    check_fraction(floor, "floor")
    if len(history) < 3:
        return 1.0
    return _upper(mad(history), safety, floor)


def iqr_upper_threshold(
    history: Sequence[float], safety: float = 1.5, floor: float = 0.5
) -> float:
    """Adaptive upper threshold from CPU history via IQR."""
    check_non_negative(safety, "safety")
    check_fraction(floor, "floor")
    if len(history) < 3:
        return 1.0
    return _upper(iqr(history), safety, floor)
