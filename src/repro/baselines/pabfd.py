"""PABFD baseline — centralised Power-Aware Best Fit Decreasing.

Beloglazov & Buyya (CCPE 2012), as configured by the paper: "a
centralized server periodically monitors resources usage of PMs and
using global information makes consolidation decisions.  It calculates
[the] upper threshold by offline statistical analysis of historical data
... The Median Absolute Deviation (MAD) is used as an estimator."

Per round the central controller:

1. records every PM's CPU utilisation into its history window;
2. **overload detection** — a host whose CPU utilisation exceeds its
   MAD-adaptive threshold sheds VMs chosen by Minimum Migration Time
   (smallest memory first — cheapest to move) until it projects below
   the threshold;
3. **underload detection** — the least-utilised active host is drained
   entirely if all its VMs can be placed elsewhere, then switched off;
4. **placement** — Power-Aware BFD: VMs sorted by decreasing CPU demand,
   each placed on the active host with the least power increase that
   fits and stays below its threshold; being centralised, PABFD may wake
   sleeping hosts when nothing else fits (the distributed protocols
   cannot).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple


from repro.baselines.base import ConsolidationPolicy
from repro.baselines.thresholds import mad_upper_threshold
from repro.datacenter.cluster import DataCenter
from repro.datacenter.pm import PhysicalMachine
from repro.datacenter.power import LinearPowerModel
from repro.datacenter.vm import VirtualMachine
from repro.util.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.engine import Simulation
    from repro.util.rng import RngStreams

__all__ = ["PabfdConfig", "PabfdController", "PabfdPolicy"]


@dataclass(frozen=True)
class PabfdConfig:
    """PABFD knobs (defaults follow Beloglazov & Buyya's MAD variant)."""

    safety: float = 2.58
    history_window: int = 30
    threshold_floor: float = 0.5
    #: Upper bound on VMs shed from one overloaded host per round.
    max_evictions_per_host: int = 10
    #: The central manager runs "periodically" (Beloglazov: every 5
    #: simulated minutes); with 2-minute rounds that is one control pass
    #: every few rounds.  Overloads persist between control points —
    #: the latency cost of centralisation.
    control_period_rounds: int = 6
    #: Whether the centralised manager may reactivate sleeping hosts.
    #: Beloglazov's original system can; the paper's PeerSim
    #: reimplementation evidently could not (its PABFD packs *below* the
    #: BFD baseline with 58% of PMs overloaded — impossible if overload
    #: relief could reopen capacity), so the reproduction defaults to
    #: False.  Flip for the "PABFD with host reactivation" ablation.
    allow_wake_ups: bool = False

    def __post_init__(self) -> None:
        check_positive(self.safety, "safety")
        check_positive(self.history_window, "history_window")
        check_fraction(self.threshold_floor, "threshold_floor")
        check_positive(self.max_evictions_per_host, "max_evictions_per_host")
        check_positive(self.control_period_rounds, "control_period_rounds")


class PabfdController:
    """The central manager: global view, per-round consolidation pass."""

    def __init__(
        self,
        dc: DataCenter,
        config: PabfdConfig,
        power_model: Optional[LinearPowerModel] = None,
    ) -> None:
        self.dc = dc
        self.config = config
        self.power_model = power_model if power_model is not None else LinearPowerModel()
        self._history: Dict[int, Deque[float]] = {
            pm.pm_id: deque(maxlen=config.history_window) for pm in dc.pms
        }
        self.enabled = False
        self.wake_ups = 0
        self.switch_offs = 0
        self._rounds_seen = 0

    # -- per-round hooks -------------------------------------------------------

    def record_histories(self) -> None:
        """Monitoring runs every round, even before consolidation starts."""
        for pm in self.dc.pms:
            if not pm.asleep:
                self._history[pm.pm_id].append(pm.cpu_utilization())

    def step(self, sim: "Simulation") -> None:
        """Monitoring every round; a consolidation pass only at control
        points (every ``control_period_rounds`` rounds)."""
        self.record_histories()
        if not self.enabled:
            return
        self._rounds_seen += 1
        if self._rounds_seen % self.config.control_period_rounds != 0:
            return
        to_place = self._shed_overloaded()
        self._place(to_place, sim)
        self._drain_underloaded(sim)

    # -- thresholds ----------------------------------------------------------------

    def threshold_of(self, pm_id: int) -> float:
        return mad_upper_threshold(
            list(self._history[pm_id]),
            safety=self.config.safety,
            floor=self.config.threshold_floor,
        )

    # -- phase 1: overload detection + MMT selection -----------------------------------

    def _shed_overloaded(self) -> List[VirtualMachine]:
        shed: List[VirtualMachine] = []
        for pm in self.dc.active_pms():
            threshold = self.threshold_of(pm.pm_id)
            # ">=" matters: a host pinned at exactly 100% has MAD 0 and a
            # threshold of 1.0; strict ">" would never relieve it.
            if pm.cpu_utilization() < threshold:
                continue
            # Minimum Migration Time: smallest memory demand first.
            candidates = sorted(
                pm.vms, key=lambda v: (v.current_demand_abs()[1], v.vm_id)
            )
            projected = pm.cpu_utilization()
            evicted = 0
            for vm in candidates:
                if projected < threshold or evicted >= self.config.max_evictions_per_host:
                    break
                projected -= vm.cpu_demand_mips() / pm.spec.cpu_mips
                shed.append(vm)
                evicted += 1
        return shed

    # -- phase 2: power-aware BFD placement --------------------------------------------

    def _power_increase(self, pm: PhysicalMachine, vm: VirtualMachine) -> float:
        u_now = pm.cpu_utilization()
        u_after = min(1.0, u_now + vm.cpu_demand_mips() / pm.spec.cpu_mips)
        return self.power_model.power(u_after) - self.power_model.power(u_now)

    def _fits_below_threshold(self, pm: PhysicalMachine, vm: VirtualMachine) -> bool:
        if not pm.fits(vm):
            return False
        u_after = (
            sum(v.cpu_demand_mips() for v in pm.vms) + vm.cpu_demand_mips()
        ) / pm.spec.cpu_mips
        # Strictly below the threshold: filling to exactly 1.0 would
        # place the receiver straight into overload.
        return u_after < self.threshold_of(pm.pm_id)

    def _choose_host(
        self, vm: VirtualMachine, exclude: int
    ) -> Optional[PhysicalMachine]:
        best: Optional[Tuple[float, int]] = None
        for pm in self.dc.active_pms():
            if pm.pm_id == exclude:
                continue
            if self._fits_below_threshold(pm, vm):
                key = (self._power_increase(pm, vm), pm.pm_id)
                if best is None or key < best:
                    best = key
        return self.dc.pm(best[1]) if best is not None else None

    def _place(self, vms: List[VirtualMachine], sim: "Simulation") -> None:
        # Decreasing CPU demand — the "D" of PABFD.
        for vm in sorted(
            vms, key=lambda v: (-v.cpu_demand_mips(), v.vm_id)
        ):
            src = vm.host_id
            assert src is not None
            host = self._choose_host(vm, exclude=src)
            if host is None and self.config.allow_wake_ups:
                host = self._wake_one(sim)
            if host is not None and host.pm_id != src:
                self.dc.migrate(vm.vm_id, host.pm_id)
            # else: nowhere to go — the VM stays; the host remains overloaded.

    def _wake_one(self, sim: "Simulation") -> Optional[PhysicalMachine]:
        """Centralised privilege: reactivate one sleeping host."""
        for pm in self.dc.pms:
            if pm.asleep:
                pm.asleep = False
                sim.wake(pm.pm_id)
                self._history[pm.pm_id].clear()
                self.wake_ups += 1
                return pm
        return None

    # -- phase 3: underload draining ----------------------------------------------------

    def _drain_underloaded(self, sim: "Simulation") -> None:
        """Beloglazov's underload pass: repeatedly drain the least
        utilised host until a drain fails (no feasible full placement)."""
        drained: set = set()
        while True:
            active = [
                pm for pm in self.dc.active_pms()
                if not pm.is_empty and pm.pm_id not in drained
            ]
            if len(active) <= 1:
                return
            source = min(active, key=lambda pm: (pm.cpu_utilization(), pm.pm_id))
            if not self._drain_one(source, sim):
                return
            drained.add(source.pm_id)

    def _drain_one(self, source: PhysicalMachine, sim: "Simulation") -> bool:
        """Plan a full drain of ``source``; abort (placing nothing)
        unless every VM fits.  Returns True when the host was emptied."""
        plan: List[Tuple[int, int]] = []
        placed_load: Dict[int, float] = {}
        for vm in sorted(source.vms, key=lambda v: (-v.cpu_demand_mips(), v.vm_id)):
            host = self._choose_host_with_extra(vm, source.pm_id, placed_load)
            if host is None:
                return False
            plan.append((vm.vm_id, host.pm_id))
            placed_load[host.pm_id] = placed_load.get(host.pm_id, 0.0) + vm.cpu_demand_mips()
        for vm_id, host_id in plan:
            self.dc.migrate(vm_id, host_id)
        if source.is_empty:
            source.asleep = True
            node = sim.node(source.pm_id)
            if node.is_up:
                node.sleep()
            self.switch_offs += 1
            if sim.tracer.enabled:
                sim.tracer.emit("pm_sleep", sim.round_index, source.pm_id)
            return True
        return False

    def _choose_host_with_extra(
        self, vm: VirtualMachine, exclude: int, placed_load: Dict[int, float]
    ) -> Optional[PhysicalMachine]:
        """Like _choose_host but accounts for load already planned onto
        hosts during this drain (the migrations have not executed yet)."""
        best: Optional[Tuple[float, int]] = None
        for pm in self.dc.active_pms():
            if pm.pm_id == exclude:
                continue
            extra = placed_load.get(pm.pm_id, 0.0)
            u_after = (
                sum(v.cpu_demand_mips() for v in pm.vms) + extra + vm.cpu_demand_mips()
            ) / pm.spec.cpu_mips
            mem_after = (
                pm.demand_vector()[1] + vm.current_demand_abs()[1]
            ) / pm.spec.mem_mb
            if u_after < self.threshold_of(pm.pm_id) and mem_after <= 1.0:
                key = (self._power_increase(pm, vm), pm.pm_id)
                if best is None or key < best:
                    best = key
        return self.dc.pm(best[1]) if best is not None else None


class PabfdPolicy(ConsolidationPolicy):
    """PABFD wired onto a simulation (a controller, no node protocols)."""

    name = "PABFD"

    def __init__(self, config: Optional[PabfdConfig] = None) -> None:
        self.config = config if config is not None else PabfdConfig()
        self.controller: Optional[PabfdController] = None

    def attach(self, dc: DataCenter, sim: "Simulation", streams: "RngStreams",
               warmup_rounds: int) -> None:
        self.controller = PabfdController(dc, self.config)
        if sim.telemetry.enabled:
            sim.telemetry.register_counters(
                "pabfd",
                lambda: {
                    "switch_offs": float(self.controller.switch_offs),
                    "wake_ups": float(self.controller.wake_ups),
                },
            )

    def end_warmup(self, dc: DataCenter, sim: "Simulation") -> None:
        assert self.controller is not None, "attach() must run first"
        self.controller.enabled = True

    def step(self, dc: DataCenter, sim: "Simulation") -> None:
        assert self.controller is not None, "attach() must run first"
        self.controller.step(sim)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        assert self.controller is not None
        ctl = self.controller
        return {
            "histories": {
                str(pm_id): list(hist) for pm_id, hist in ctl._history.items()
            },
            "enabled": ctl.enabled,
            "wake_ups": ctl.wake_ups,
            "switch_offs": ctl.switch_offs,
            "rounds_seen": ctl._rounds_seen,
        }

    def load_state_dict(self, state: dict) -> None:
        assert self.controller is not None
        ctl = self.controller
        maxlen = ctl.config.history_window
        for pm_id_str, values in state["histories"].items():
            ctl._history[int(pm_id_str)] = deque(
                (float(v) for v in values), maxlen=maxlen
            )
        ctl.enabled = bool(state["enabled"])
        ctl.wake_ups = int(state["wake_ups"])
        ctl.switch_offs = int(state["switch_offs"])
        ctl._rounds_seen = int(state["rounds_seen"])
