"""The uniform policy interface the experiment runner drives.

Lifecycle of a run (see :mod:`repro.experiments.runner`)::

    policy.attach(dc, sim, streams, warmup_rounds)
    for each warmup round:   dc.advance_round(); sim.run_round()
    policy.end_warmup(dc, sim)          # accounting resets happen here too
    for each evaluation round:
        dc.advance_round(); sim.run_round(); policy.step(dc, sim)

Gossip policies register per-node protocols in ``attach`` and use the
warmup purely for monitoring history (GLAP additionally learns and
aggregates Q-values during warmup); consolidation must start only after
``end_warmup``.  Centralised policies (PABFD) do their per-round work in
``step``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.cluster import DataCenter
    from repro.simulator.engine import Simulation
    from repro.util.rng import RngStreams

__all__ = ["ConsolidationPolicy"]


class ConsolidationPolicy(abc.ABC):
    """A named consolidation strategy attachable to a simulation."""

    #: Short display name used in reports ("GLAP", "GRMP", ...).
    name: str = "policy"

    @abc.abstractmethod
    def attach(
        self,
        dc: "DataCenter",
        sim: "Simulation",
        streams: "RngStreams",
        warmup_rounds: int,
    ) -> None:
        """Register protocols / controllers on a fresh simulation."""

    def end_warmup(self, dc: "DataCenter", sim: "Simulation") -> None:
        """Switch from monitoring/learning to active consolidation."""

    def step(self, dc: "DataCenter", sim: "Simulation") -> None:
        """Centralised per-round hook, after the gossip round."""

    # -- checkpointing -------------------------------------------------------
    #
    # The resume path rebuilds a run deterministically (attach() on a
    # fresh simulation), then overwrites every piece of *mutable* policy
    # state from the checkpoint.  ``state_dict`` therefore only needs to
    # cover what attach() cannot reproduce: learned models, protocol
    # counters, phase/enablement flags, monitoring histories, overlay
    # views.  RNG stream state is handled by ``RngStreams`` directly.

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe mutable policy state; ``{}`` for stateless policies."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` (after attach)."""
        if state:
            raise ValueError(
                f"{self.name} carries no checkpointable state, got keys "
                f"{sorted(state)}"
            )
