"""EcoCloud baseline — probabilistic gradual-threshold consolidation.

Mastroianni, Meo & Papuzzo (TCC 2013): placement and migration decisions
are Bernoulli trials driven by local CPU utilisation, with a lower
threshold T1 and an upper threshold T2 (the paper's configuration:
T1 = 0.3, T2 = 0.8).

* **Assignment**: a PM asked to host a VM accepts with probability
  ``f(u) = (u / T2)^p * (T2 - u) / T2`` for ``u < T2`` (0 otherwise) —
  the EcoCloud shape: near-zero for almost-empty servers (so they can
  drain and switch off), rising with utilisation, and dropping to zero
  at T2 (gradual, not a hard cliff).
* **Underload migration**: a PM with ``u < T1`` tries to drain; each
  round it migrates one VM with probability growing as u falls
  (``(1 - u / T1)``), gradual so that not all underloaded PMs dump
  simultaneously.
* **Overload migration**: a PM with ``u > T2`` migrates one VM with
  probability growing as u exceeds T2.

EcoCloud's original design broadcasts each request through a central
coordinator; the paper points out this is its scalability weakness.  We
keep that semantics but bound the probe set: the migrating PM polls up
to ``probe_count`` random *active* PMs drawn from the whole data centre
(coordinator's-eye view), and the VM goes to the first acceptor that
also has raw capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.baselines.base import ConsolidationPolicy
from repro.datacenter.cluster import DataCenter
from repro.datacenter.pm import PhysicalMachine
from repro.datacenter.vm import VirtualMachine
from repro.simulator.network import Message
from repro.simulator.protocol import Protocol
from repro.util.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.engine import Simulation
    from repro.simulator.node import Node
    from repro.util.rng import RngStreams

__all__ = ["EcoCloudConfig", "EcoCloudProtocol", "EcoCloudPolicy"]


@dataclass(frozen=True)
class EcoCloudConfig:
    """EcoCloud knobs (paper configuration: T1 = 0.3, T2 = 0.8)."""

    lower_threshold: float = 0.3
    upper_threshold: float = 0.8
    #: Shape parameter p of the assignment function (EcoCloud's alpha).
    assignment_shape: float = 3.0
    #: How many candidate hosts one migration request polls.
    probe_count: int = 10

    def __post_init__(self) -> None:
        check_fraction(self.lower_threshold, "lower_threshold")
        check_fraction(self.upper_threshold, "upper_threshold")
        if not self.lower_threshold < self.upper_threshold:
            raise ValueError(
                f"need lower_threshold < upper_threshold, got "
                f"{self.lower_threshold} >= {self.upper_threshold}"
            )
        check_positive(self.assignment_shape, "assignment_shape")
        check_positive(self.probe_count, "probe_count")

    # -- the probability functions (pure, unit-testable) ---------------------

    def accept_probability(self, utilization: float) -> float:
        """Bernoulli accept probability for a host at ``utilization``."""
        u = check_fraction(utilization, "utilization")
        t2 = self.upper_threshold
        if u >= t2:
            return 0.0
        # Normalised so the maximum over [0, T2) is exactly 1 at
        # u* = T2 * p / (p + 1).
        p = self.assignment_shape
        peak = (p / (p + 1.0)) ** p * (1.0 / (p + 1.0))
        val = (u / t2) ** p * ((t2 - u) / t2)
        return float(min(1.0, val / peak))

    def underload_migrate_probability(self, utilization: float) -> float:
        """Probability a host triggers its switch-off (drain) procedure.

        Gradual over the whole [0, T2) band — EcoCloud's servers are
        meant to operate concentrated just below T2 (its paper's
        steady-state histograms), a point its arrival-churn dynamics
        reach naturally but a pure-consolidation setting cannot with a
        hard T1 cut-off.  We therefore use ``(1 - u/T2)^beta`` with
        ``beta`` anchored so the probability is ~0.18 at T1: below T1 a
        server tries hard to shut down, above it the pull weakens
        smoothly instead of vanishing.  (Documented adaptation — see
        DESIGN.md §3.)
        """
        u = check_fraction(utilization, "utilization")
        t2 = self.upper_threshold
        if u >= t2:
            return 0.0
        beta = np.log(0.18) / np.log(1.0 - self.lower_threshold / t2)
        return float((1.0 - u / t2) ** beta)

    def overload_migrate_probability(self, utilization: float) -> float:
        """Probability an overloaded host evicts one VM this round."""
        u = check_fraction(utilization, "utilization")
        t2 = self.upper_threshold
        if u <= t2:
            return 0.0
        return float(min(1.0, (u - t2) / (1.0 - t2)))


class EcoCloudProtocol(Protocol):
    """Per-PM EcoCloud behaviour as a round protocol."""

    def __init__(
        self, dc: DataCenter, config: EcoCloudConfig, rng: np.random.Generator
    ) -> None:
        self.dc = dc
        self.config = config
        self._rng = rng
        self.enabled = False
        self.switch_offs = 0

    def execute_round(self, node: "Node", sim: "Simulation") -> None:
        if not self.enabled:
            return
        pm: PhysicalMachine = node.payload
        if pm.asleep or pm.is_empty:
            return
        u = pm.cpu_utilization()
        cfg = self.config
        if u > cfg.upper_threshold:
            if self._rng.random() < cfg.overload_migrate_probability(u):
                # Evict the largest CPU consumer to relieve pressure fast.
                vm = max(pm.vms, key=lambda v: (v.current_demand_abs()[0], -v.vm_id))
                self._request_migration(vm, pm, sim)
        else:
            if self._rng.random() < cfg.underload_migrate_probability(u):
                # Switch-off procedure: try to migrate *all* VMs, each
                # through its own probe + Bernoulli acceptance.  A partial
                # drain leaves the PM active with what remained.
                for vm in sorted(
                    pm.vms, key=lambda v: (v.current_demand_abs()[0], v.vm_id)
                ):
                    self._request_migration(vm, pm, sim)
                if pm.is_empty:
                    self._switch_off(pm, sim)

    # -- coordinator-style placement -----------------------------------------------

    def _request_migration(
        self, vm: VirtualMachine, src: PhysicalMachine, sim: "Simulation"
    ) -> bool:
        candidates = self._probe_targets(src, sim)
        for pm in candidates:
            if self._rng.random() < self.config.accept_probability(pm.cpu_utilization()):
                if pm.fits(vm):
                    self.dc.migrate(vm.vm_id, pm.pm_id)
                    return True
        return False

    def _probe_targets(
        self, src: PhysicalMachine, sim: "Simulation"
    ) -> List[PhysicalMachine]:
        """Up to ``probe_count`` random active PMs (coordinator broadcast)."""
        active = [
            pm for pm in self.dc.active_pms() if pm.pm_id != src.pm_id
        ]
        if not active:
            return []
        # The broadcast request, for traffic accounting.
        sim.network.deliver(Message(src.pm_id, -1, "ecocloud/broadcast", size_bytes=32))
        k = min(self.config.probe_count, len(active))
        idx = self._rng.choice(len(active), size=k, replace=False)
        return [active[i] for i in idx]

    def _switch_off(self, pm: PhysicalMachine, sim: "Simulation") -> None:
        pm.asleep = True
        n = sim.node(pm.pm_id)
        if n.is_up:
            n.sleep()
        self.switch_offs += 1
        if sim.tracer.enabled:
            sim.tracer.emit("pm_sleep", sim.round_index, pm.pm_id)


class EcoCloudPolicy(ConsolidationPolicy):
    """EcoCloud wired onto a simulation."""

    name = "EcoCloud"

    def __init__(self, config: Optional[EcoCloudConfig] = None) -> None:
        self.config = config if config is not None else EcoCloudConfig()
        self.protocol: Optional[EcoCloudProtocol] = None

    def attach(self, dc: DataCenter, sim: "Simulation", streams: "RngStreams",
               warmup_rounds: int) -> None:
        self.protocol = EcoCloudProtocol(dc, self.config, streams.get("ecocloud"))
        for node in sim.nodes:
            node.register("ecocloud", self.protocol)
        if sim.telemetry.enabled:
            sim.telemetry.register_counters(
                "ecocloud",
                lambda: {"switch_offs": float(self.protocol.switch_offs)},
            )

    def end_warmup(self, dc: DataCenter, sim: "Simulation") -> None:
        assert self.protocol is not None, "attach() must run first"
        self.protocol.enabled = True

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        assert self.protocol is not None
        return {
            "enabled": self.protocol.enabled,
            "switch_offs": self.protocol.switch_offs,
        }

    def load_state_dict(self, state: dict) -> None:
        assert self.protocol is not None
        self.protocol.enabled = bool(state["enabled"])
        self.protocol.switch_offs = int(state["switch_offs"])
