"""repro — a reproduction of GLAP (CLUSTER 2016).

GLAP: Distributed Dynamic Workload Consolidation through Gossip-Based
Learning (Khelghatdoust, Gramoli, Sun).

The package implements the paper's full system and evaluation stack:

* :mod:`repro.simulator` — a PeerSim-style cycle-driven P2P engine;
* :mod:`repro.overlay` — Cyclon membership + static overlays;
* :mod:`repro.datacenter` — PMs, VMs, power, live-migration cost model;
* :mod:`repro.traces` — Google-cluster-like workload generation;
* :mod:`repro.core` — GLAP itself: Q-learning states/rewards/tables,
  two-phase gossip learning, gossip consolidation;
* :mod:`repro.baselines` — GRMP, EcoCloud, PABFD, BFD packing;
* :mod:`repro.metrics` — SLAV, energy, consolidation metrics;
* :mod:`repro.experiments` — scenario grid, runner, figure/table drivers.

Quickstart::

    from repro import Scenario, make_policy, run_policy

    scenario = Scenario(n_pms=60, ratio=3, rounds=180, warmup_rounds=180)
    result = run_policy(scenario, make_policy("GLAP"), seed=1)
    print(result)
"""

from repro.core.glap import GlapConfig, GlapPolicy
from repro.core.qlearning import QLearningConfig, QLearningModel
from repro.datacenter.cluster import DataCenter
from repro.experiments.runner import (
    POLICY_NAMES,
    build_environment,
    make_policy,
    run_policy,
    run_repetitions,
)
from repro.experiments.scenarios import Scenario, paper_grid, scaled_grid
from repro.metrics.report import RunResult
from repro.traces.google import GoogleLikeTraceGenerator, GoogleTraceParams

__version__ = "1.0.0"

__all__ = [
    "GlapConfig",
    "GlapPolicy",
    "QLearningConfig",
    "QLearningModel",
    "DataCenter",
    "POLICY_NAMES",
    "build_environment",
    "make_policy",
    "run_policy",
    "run_repetitions",
    "Scenario",
    "paper_grid",
    "scaled_grid",
    "RunResult",
    "GoogleLikeTraceGenerator",
    "GoogleTraceParams",
    "__version__",
]
