"""``glap watch``: live run monitoring from a heartbeat stream.

Everything the subcommand knows lives here, mirroring how
:mod:`repro.obs.analytics` backs ``glap analyze``.  A heartbeat file
(written by :class:`~repro.obs.heartbeat.HeartbeatWriter`) is loaded
tail-tolerantly, reduced to a watch report — the existing
:func:`~repro.obs.analytics.health_report` verdict computed over the
stream's reconstructed telemetry, plus progress, ETA, Q-cosine and
overload curves, per-shard imbalance, and the resume/abort/complete
markers — and rendered with the same ASCII sparklines ``analyze``
uses.  Exit-code convention (enforced by the CLI): 0 healthy,
1 unhealthy (violations, an abort marker, or a missed
``--min-convergence``), 2 usage error.

A run interrupted mid-round and resumed from an earlier checkpoint
legitimately re-executes rounds, so ticks are deduplicated by round
index (the latest occurrence wins) before any series is built — the
curves and counter totals then describe the run's *effective* history.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.analytics import format_health_report, health_report
from repro.obs.heartbeat import load_heartbeat
from repro.util.asciiplot import sparkline

__all__ = [
    "resolve_heartbeat_path",
    "watch_report",
    "watch_report_from_path",
    "format_watch_report",
]

#: Default heartbeat filename inside a run directory.
DEFAULT_HEARTBEAT_NAME = "heartbeat.jsonl"


def resolve_heartbeat_path(target: Union[str, Path]) -> Path:
    """Resolve a ``glap watch`` target: a heartbeat file or a run dir."""
    path = Path(target)
    if path.is_dir():
        return path / DEFAULT_HEARTBEAT_NAME
    return path


def _dedup_ticks(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Ticks by round index, latest occurrence winning, round order."""
    by_round: Dict[int, Dict[str, Any]] = {}
    for record in records:
        if record.get("kind") == "tick":
            by_round[int(record["round"])] = record
    return [by_round[r] for r in sorted(by_round)]


def _eta(ticks: List[Dict[str, Any]], rounds_total: Optional[int]) -> Dict[str, Any]:
    """ETA from the trailing monotonic ``wall_s`` window.

    A resume restarts the writer's wall clock, so the window only spans
    ticks after the last wall-time reset; the per-round pace times the
    remaining rounds gives the ETA.
    """
    eta: Dict[str, Any] = {"s_per_round": None, "eta_s": None}
    pts = [
        (int(t["round"]), float(t["timing"]["wall_s"]))
        for t in ticks
        if isinstance(t.get("timing"), dict) and "wall_s" in t["timing"]
    ]
    if len(pts) < 2:
        return eta
    # Trim to the suffix where wall_s is non-decreasing (post-resume).
    start = 0
    for i in range(1, len(pts)):
        if pts[i][1] < pts[i - 1][1]:
            start = i
    window = pts[start:][-32:]
    if len(window) < 2 or window[-1][0] <= window[0][0]:
        return eta
    pace = (window[-1][1] - window[0][1]) / (window[-1][0] - window[0][0])
    eta["s_per_round"] = pace
    if rounds_total is not None:
        remaining = max(0, int(rounds_total) - 1 - window[-1][0])
        eta["eta_s"] = pace * remaining
    return eta


def watch_report(
    records: List[Dict[str, Any]],
    min_convergence: Optional[float] = None,
) -> Dict[str, Any]:
    """Reduce a heartbeat record list to the machine-readable report.

    Raises ``ValueError`` when the stream has no header — that is a
    usage error (not a heartbeat file), not an unhealthy run.
    """
    header = next((r for r in records if r.get("kind") == "header"), None)
    if header is None:
        raise ValueError("no header record — not a heartbeat stream")
    ticks = _dedup_ticks(records)
    aborts = [r for r in records if r.get("kind") == "abort"]
    resumes = [r for r in records if r.get("kind") == "resumed"]
    complete = any(r.get("kind") == "complete" for r in records)

    # Reconstruct a telemetry section from the stream: totals are the
    # per-key delta sums, gauges one point per tick that carried them.
    totals: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, List[float]]] = {}
    for t in ticks:
        for key, delta in t.get("counters", {}).items():
            totals[key] = totals.get(key, 0.0) + float(delta)
        for name, value in t.get("gauges", {}).items():
            series = gauges.setdefault(name, {"rounds": [], "values": []})
            series["rounds"].append(int(t["round"]))
            series["values"].append(float(value))
    health = health_report(
        telemetry={"totals": totals, "gauges": gauges},
        min_convergence=min_convergence,
    )
    for abort in aborts:
        detail = abort.get("reason", "unknown")
        if abort.get("error"):
            detail = f"{detail}: {abort['error']}"
        health["violations"].append({"check": "run_aborted", "detail": str(detail)})
    health["checks_run"].append("run_aborted")
    health["healthy"] = not health["violations"]

    rounds_total = header.get("rounds_total")
    last = ticks[-1] if ticks else None
    progress: Dict[str, Any] = {
        "round": int(last["round"]) if last else None,
        "rounds_total": rounds_total,
        "stage": last.get("stage") if last else None,
        "fraction": (
            (int(last["round"]) + 1) / rounds_total
            if last is not None and rounds_total
            else None
        ),
    }
    overloaded = [
        (int(t["round"]), int(t["overloaded_pms"]))
        for t in ticks
        if "overloaded_pms" in t
    ]
    imbalance = next(
        (
            float(t["timing"]["shard/phase_max_over_mean"])
            for t in reversed(ticks)
            if isinstance(t.get("timing"), dict)
            and "shard/phase_max_over_mean" in t["timing"]
        ),
        None,
    )
    return {
        "version": 1,
        "healthy": health["healthy"],
        "health": health,
        "header": dict(header),
        "progress": progress,
        "eta": _eta(ticks, rounds_total),
        "overloaded": {
            "rounds": [r for r, _ in overloaded],
            "values": [v for _, v in overloaded],
        },
        "shard_imbalance": imbalance,
        "ticks": len(ticks),
        "markers": {
            "resumed": len(resumes),
            "aborted": bool(aborts),
            "complete": complete,
        },
    }


def watch_report_from_path(
    target: Union[str, Path], min_convergence: Optional[float] = None
) -> Dict[str, Any]:
    """Load a heartbeat target (file or run dir) and build the report."""
    path = resolve_heartbeat_path(target)
    records = load_heartbeat(path, allow_partial_tail=True)
    return watch_report(records, min_convergence=min_convergence)


def format_watch_report(report: Mapping[str, Any]) -> str:
    """Terminal rendering: status line, health report, curves, ETA."""
    lines: List[str] = []
    header = report.get("header", {})
    progress = report.get("progress", {})
    markers = report.get("markers", {})
    status = "complete" if markers.get("complete") else (
        "ABORTED" if markers.get("aborted") else "live"
    )
    where = ""
    if progress.get("round") is not None:
        where = f"  round {progress['round']}"
        if progress.get("rounds_total"):
            where += f"/{progress['rounds_total'] - 1}"
        if progress.get("fraction") is not None:
            where += f" ({progress['fraction']:.0%})"
        if progress.get("stage"):
            where += f" [{progress['stage']}]"
    lines.append(
        f"{header.get('policy', '?')}  {header.get('n_pms', '?')} PMs / "
        f"{header.get('n_vms', '?')} VMs  seed={header.get('seed', '?')}  "
        f"{status}{where}"
    )
    if markers.get("resumed"):
        lines.append(f"resumed {markers['resumed']}x (heartbeat stream continued)")

    eta = report.get("eta", {})
    if eta.get("s_per_round") is not None:
        pace = f"{eta['s_per_round']:.3g} s/round"
        if eta.get("eta_s") is not None and not markers.get("complete"):
            lines.append(f"pace: {pace}  ETA {_fmt_duration(eta['eta_s'])}")
        else:
            lines.append(f"pace: {pace}")

    overloaded = report.get("overloaded", {})
    if overloaded.get("values"):
        values = [float(v) for v in overloaded["values"]]
        lines.append(
            f"overloaded PMs  |{sparkline(values)}| "
            f"last {int(values[-1])}, peak {int(max(values))}"
        )
    if report.get("shard_imbalance") is not None:
        lines.append(
            f"shard imbalance (max/mean compute): {report['shard_imbalance']:.3f}"
        )
    lines.append(format_health_report(report["health"]))
    return "\n".join(lines)


def _fmt_duration(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"
