"""Flight recorder: a bounded ring of recent events + a post-mortem dump.

When a multi-hour run dies — invariant violation, unhandled exception,
SIGTERM from a scheduler — the artifacts that would explain it (the
trace, the telemetry series) are either disabled, unflushed, or
gigabytes of haystack.  The flight recorder keeps exactly the needle:
a bounded ring buffer of the most recent typed events (teed off the
tracer path, so it works even when no trace file is being written) and,
at dump time, the last-K rounds of telemetry, the run's config
provenance, its RNG stream names, and the latest checkpoint pointer —
one schema-versioned JSON bundle, written atomically, small enough to
attach to a CI artifact or a bug report.

Same house rule as every observer: the recorder allocates memory and
reads clocks but never touches the simulation's RNG streams, so an
instrumented run stays bit-identical to the golden digests (asserted
by the golden suite with the recorder enabled).

The runner triggers :meth:`FlightRecorder.dump` from one failure
funnel: ``InvariantViolation``, any unhandled exception, and — when a
recorder is installed — SIGTERM/SIGINT, which the runner converts into
an exception so the dump happens on the main thread with the ring
intact.
"""

from __future__ import annotations

import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Union

from repro.obs.tracer import Tracer, _event_dict
from repro.util.io import atomic_write_json

__all__ = [
    "FLIGHT_SCHEMA",
    "FLIGHT_VERSION",
    "FlightRecorder",
    "load_bundle",
    "validate_bundle",
]

FLIGHT_SCHEMA = "glap-flight"
FLIGHT_VERSION = 1

#: Dump reasons the runner's failure funnel classifies into.
DUMP_REASONS = ("invariant_violation", "exception", "sigterm", "sigint", "manual")


class _RecorderTee(Tracer):
    """A tracer that records into the ring and forwards to the inner one.

    ``enabled`` is True whenever a recorder is installed — the ring
    wants events even when no trace file is being written.  Forwarding
    preserves the inner tracer's contract exactly (same validated
    event dicts, same order).
    """

    enabled = True

    def __init__(self, recorder: "FlightRecorder", inner: Tracer) -> None:
        self._recorder = recorder
        self._inner = inner

    def emit(self, kind: str, round_index: int, node: int, **fields: Any) -> None:
        self._recorder._ring.append(_event_dict(kind, round_index, node, fields))
        if self._inner.enabled:
            self._inner.emit(kind, round_index, node, **fields)

    def close(self) -> None:
        self._inner.close()


class FlightRecorder:
    """Bounded event ring + provenance, dumped as a post-mortem bundle.

    ``capacity`` bounds the event ring; ``telemetry_tail`` bounds how
    many trailing rounds of every telemetry series go into the bundle.
    ``bundle_path`` is where :meth:`dump` writes.
    """

    def __init__(
        self,
        bundle_path: Union[str, Path],
        capacity: int = 512,
        telemetry_tail: int = 64,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if telemetry_tail <= 0:
            raise ValueError(f"telemetry_tail must be > 0, got {telemetry_tail}")
        self.bundle_path = Path(bundle_path)
        self.capacity = int(capacity)
        self.telemetry_tail = int(telemetry_tail)
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._config: Dict[str, Any] = {}
        self._telemetry: Optional[Any] = None
        self._stream_names: List[str] = []
        self._checkpoint: Dict[str, Any] = {}
        self._heartbeat_path: Optional[str] = None
        self.dumped: Optional[str] = None

    # -- wiring -------------------------------------------------------------

    def wrap(self, tracer: Tracer) -> Tracer:
        """Tee ``tracer`` through the ring (install the result instead)."""
        return _RecorderTee(self, tracer)

    def bind(
        self,
        *,
        config: Optional[Mapping[str, Any]] = None,
        telemetry: Optional[Any] = None,
        stream_names: Optional[List[str]] = None,
        heartbeat_path: Optional[Union[str, Path]] = None,
    ) -> None:
        """Attach provenance as the runner learns it (idempotent merge)."""
        if config:
            self._config.update(config)
        if telemetry is not None:
            self._telemetry = telemetry
        if stream_names is not None:
            self._stream_names = list(stream_names)
        if heartbeat_path is not None:
            self._heartbeat_path = str(heartbeat_path)

    def checkpoint_saved(self, path: Union[str, Path], eval_rounds_done: int) -> None:
        """Record the latest checkpoint pointer (runner calls per save)."""
        self._checkpoint = {
            "path": str(path),
            "eval_rounds_done": int(eval_rounds_done),
        }

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The current ring contents, oldest first."""
        return list(self._ring)

    # -- dumping ------------------------------------------------------------

    def _telemetry_tail(self) -> Dict[str, Any]:
        telemetry = self._telemetry
        if telemetry is None or not getattr(telemetry, "enabled", False):
            return {}
        k = self.telemetry_tail
        return {
            "rounds": [int(r) for r in telemetry.rounds[-k:]],
            "series": {
                key: [float(x) for x in values[-k:]]
                for key, values in telemetry.series.items()
            },
            "gauges": {
                name: {
                    "rounds": [int(r) for r in s["rounds"][-k:]],
                    "values": [float(v) for v in s["values"][-k:]],
                }
                for name, s in telemetry.gauges.items()
            },
            "totals": dict(telemetry.totals()),
        }

    def dump(self, reason: str, error: Optional[str] = None) -> Path:
        """Write the post-mortem bundle atomically; returns its path.

        Idempotent in the useful direction: a second dump overwrites the
        first (the later failure context wins), and the bundle is always
        complete-or-absent thanks to the atomic write.
        """
        bundle: Dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "version": FLIGHT_VERSION,
            "reason": str(reason),
            "unix_time": time.time(),
            "config": dict(self._config),
            "rng_streams": list(self._stream_names),
            "events": self.events,
            "telemetry_tail": self._telemetry_tail(),
            "checkpoint": dict(self._checkpoint),
        }
        if error is not None:
            bundle["error"] = str(error)
        if self._heartbeat_path is not None:
            bundle["heartbeat_path"] = self._heartbeat_path
        atomic_write_json(bundle, self.bundle_path, indent=2, sort_keys=True)
        self.dumped = str(reason)
        return self.bundle_path


def validate_bundle(bundle: Mapping[str, Any]) -> None:
    """Schema-validate a post-mortem bundle; raises ``ValueError``."""
    if bundle.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"not a flight bundle: schema={bundle.get('schema')!r} "
            f"(expected {FLIGHT_SCHEMA!r})"
        )
    if bundle.get("version") != FLIGHT_VERSION:
        raise ValueError(
            f"flight bundle version {bundle.get('version')!r} unsupported "
            f"(this build reads version {FLIGHT_VERSION})"
        )
    if not isinstance(bundle.get("reason"), str) or not bundle["reason"]:
        raise ValueError("flight bundle has no dump reason")
    for key, kind in (
        ("config", dict),
        ("rng_streams", list),
        ("events", list),
        ("telemetry_tail", dict),
        ("checkpoint", dict),
    ):
        if not isinstance(bundle.get(key), kind):
            raise ValueError(
                f"flight bundle field {key!r} missing or not a {kind.__name__}"
            )
    for i, event in enumerate(bundle["events"]):
        if not isinstance(event, dict) or "ev" not in event or "round" not in event:
            raise ValueError(f"flight bundle event {i} is not a typed event")


def load_bundle(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a post-mortem bundle."""
    import json

    bundle = json.loads(Path(path).read_text())
    if not isinstance(bundle, dict):
        raise ValueError(f"{path}: flight bundle must be a JSON object")
    validate_bundle(bundle)
    return bundle
