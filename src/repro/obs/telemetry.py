"""Run-health telemetry: a per-round registry of counters and gauges.

The tracer (:mod:`repro.obs.tracer`) records individual *events*; the
telemetry registry records *rates and levels* — messages per kind,
migration accept/reject splits, PM sleep/wake activity, learning
TD-error, and the live Q-table cosine similarity of section IV-C — as
aligned per-round series, cheap enough to leave on for every observed
run and serialisable into benchmark summaries and checkpoints.

Design rules (shared with the tracer and profiler):

* **Zero-overhead default.**  Call sites hold a :class:`Telemetry`
  whose base implementation is a no-op with ``enabled = False``; hot
  paths guard with ``if telemetry.enabled:`` so an unobserved run pays
  one attribute check per site.  Telemetry never consumes randomness —
  the convergence gauge uses a private generator — so even an *enabled*
  registry leaves the simulation bit-identical (the golden suite
  asserts this).
* **Pull-first collection.**  Components that already keep cumulative
  diagnostic counters (network stats, consolidation rejections, fault
  injections, baseline switch-offs) register a *provider* callback; the
  registry snapshots every provider once per round and stores the
  per-round deltas.  Push counters (:meth:`Telemetry.inc` /
  :meth:`Telemetry.add`) exist for call sites with no counter home.
* **Aligned series.**  Every counter key holds one value per observed
  round; keys that appear mid-run are backfilled with zeros, so all
  series share the ``rounds`` axis.

Gauges are sampled every ``gauge_every`` rounds (a per-gauge override
is available) and stored as sparse (rounds, values) pairs — the
convergence gauge computes an O(pairs) cosine similarity, so it is not
a per-round cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping

__all__ = [
    "TELEMETRY_VERSION",
    "Telemetry",
    "NULL_TELEMETRY",
    "TelemetryRegistry",
]

#: Version of the ``telemetry`` section embedded in summaries/checkpoints.
TELEMETRY_VERSION = 1


class Telemetry:
    """No-op telemetry: the zero-overhead default at every call site."""

    #: Call sites branch on this instead of recording unconditionally.
    enabled: bool = False

    def inc(self, name: str, by: int = 1) -> None:
        """Bump a push counter.  The base implementation discards it."""

    def add(self, name: str, value: float) -> None:
        """Accumulate a float into a push counter.  No-op here."""

    def register_counters(
        self, source: str, provider: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a cumulative-counter provider.  No-op here."""

    def register_gauge(
        self,
        name: str,
        sampler: Callable[[], float],
        every: int | None = None,
    ) -> None:
        """Register a sampled gauge.  No-op here."""

    def end_round(self, round_index: int) -> None:
        """Close one simulation round.  No-op here."""


#: Shared no-op instance installed everywhere by default.
NULL_TELEMETRY = Telemetry()


@dataclass
class _Gauge:
    name: str
    sampler: Callable[[], float]
    #: Explicit cadence, or None to track the registry's ``gauge_every``
    #: (resolved at sampling time: on resume, registration runs before
    #: the checkpointed ``gauge_every`` is restored).
    every: int | None


class TelemetryRegistry(Telemetry):
    """The recording registry (see the module docstring).

    Parameters
    ----------
    gauge_every:
        Default sampling cadence for gauges registered without an
        explicit ``every`` (the convergence gauge's ``K``).
    """

    enabled = True

    def __init__(self, gauge_every: int = 10) -> None:
        if gauge_every <= 0:
            raise ValueError(f"gauge_every must be > 0, got {gauge_every}")
        self.gauge_every = int(gauge_every)
        #: Round indices observed, in order (the shared series axis).
        self.rounds: List[int] = []
        #: Per-round deltas per counter key, aligned with ``rounds``.
        self.series: Dict[str, List[float]] = {}
        #: Sparse gauge samples: name -> {"rounds": [...], "values": [...]}.
        self.gauges: Dict[str, Dict[str, List[float]]] = {}
        self._push: Dict[str, float] = {}
        self._prev: Dict[str, float] = {}
        self._sources: List[tuple[str, Callable[[], Mapping[str, float]]]] = []
        self._gauge_specs: List[_Gauge] = []

    # -- recording ------------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        self._push[name] = self._push.get(name, 0.0) + by

    def add(self, name: str, value: float) -> None:
        self._push[name] = self._push.get(name, 0.0) + float(value)

    def register_counters(
        self, source: str, provider: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register ``provider`` under the ``source`` prefix.

        The provider must return *cumulative* (monotonic) counters; the
        registry stores per-round deltas under ``"{source}/{key}"``.
        Registering the same source twice is an error — it would double-
        count every key.
        """
        if any(name == source for name, _ in self._sources):
            raise ValueError(f"telemetry source {source!r} already registered")
        self._sources.append((source, provider))

    def register_gauge(
        self,
        name: str,
        sampler: Callable[[], float],
        every: int | None = None,
    ) -> None:
        """Register a gauge sampled every ``every`` rounds.

        ``sampler`` must be deterministic and must not consume shared
        randomness (use a private generator if sampling pairs).
        """
        if every is not None and int(every) <= 0:
            raise ValueError(f"gauge cadence must be > 0, got {every}")
        if any(g.name == name for g in self._gauge_specs):
            raise ValueError(f"telemetry gauge {name!r} already registered")
        self._gauge_specs.append(
            _Gauge(name, sampler, None if every is None else int(every))
        )

    def end_round(self, round_index: int) -> None:
        """Snapshot all providers, store per-round deltas, sample gauges.

        Call exactly once after each simulation round (warmup included),
        with the round index just executed.
        """
        row: Dict[str, float] = dict(self._push)
        for source, provider in self._sources:
            for key, value in provider().items():
                row[f"{source}/{key}"] = float(value)
        n_done = len(self.rounds)
        for key, cum in row.items():
            series = self.series.get(key)
            if series is None:
                series = [0.0] * n_done
                self.series[key] = series
            series.append(cum - self._prev.get(key, 0.0))
            self._prev[key] = cum
        # Keys recorded earlier but absent from this round's snapshot
        # (a provider may legitimately stop reporting one) stay aligned.
        for key, series in self.series.items():
            if len(series) == n_done:
                series.append(0.0)
        self.rounds.append(int(round_index))
        for gauge in self._gauge_specs:
            cadence = gauge.every if gauge.every is not None else self.gauge_every
            if round_index % cadence == 0:
                samples = self.gauges.setdefault(
                    gauge.name, {"rounds": [], "values": []}
                )
                samples["rounds"].append(int(round_index))
                samples["values"].append(float(gauge.sampler()))

    # -- read-out -------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Final cumulative value of every counter key."""
        return dict(self._prev)

    def gauge_final(self, name: str) -> float | None:
        """Last sampled value of gauge ``name`` (None if never sampled)."""
        samples = self.gauges.get(name)
        if not samples or not samples["values"]:
            return None
        return float(samples["values"][-1])

    def to_dict(self, include_series: bool = False) -> Dict[str, Any]:
        """The serialisable ``telemetry`` section (summaries, reports).

        Totals and gauges are deterministic given (scenario, seed), so
        ``glap bench-compare`` gates on them exactly like metrics.  The
        per-round series are omitted by default to keep summaries small.
        """
        out: Dict[str, Any] = {
            "version": TELEMETRY_VERSION,
            "rounds_observed": len(self.rounds),
            "totals": self.totals(),
            "gauges": {
                name: {"rounds": list(s["rounds"]), "values": list(s["values"])}
                for name, s in self.gauges.items()
            },
        }
        if include_series:
            out["rounds"] = list(self.rounds)
            out["series"] = {k: list(v) for k, v in self.series.items()}
        return out

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Full mutable state, so a resumed run continues every series
        exactly where the checkpointed one stopped.  Provider and gauge
        *registrations* are not state — the resume path re-runs the same
        attach/install calls that registered them originally."""
        return {
            "version": TELEMETRY_VERSION,
            "gauge_every": self.gauge_every,
            "rounds": list(self.rounds),
            "series": {k: list(v) for k, v in self.series.items()},
            "gauges": {
                name: {"rounds": list(s["rounds"]), "values": list(s["values"])}
                for name, s in self.gauges.items()
            },
            "push": dict(self._push),
            "prev": dict(self._prev),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        version = state.get("version")
        if version != TELEMETRY_VERSION:
            raise ValueError(
                f"telemetry state version {version!r} unsupported "
                f"(this build reads version {TELEMETRY_VERSION})"
            )
        self.gauge_every = int(state["gauge_every"])
        self.rounds = [int(r) for r in state["rounds"]]
        self.series = {
            str(k): [float(x) for x in v] for k, v in state["series"].items()
        }
        self.gauges = {
            str(name): {
                "rounds": [int(r) for r in s["rounds"]],
                "values": [float(x) for x in s["values"]],
            }
            for name, s in state["gauges"].items()
        }
        self._push = {str(k): float(v) for k, v in state["push"].items()}
        self._prev = {str(k): float(v) for k, v in state["prev"].items()}
