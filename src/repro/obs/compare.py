"""Diffing two run summaries — the primitive behind the CI perf gate.

``glap bench-compare baseline.json current.json --tolerance 0.15``
loads two :mod:`repro.obs.summary` artifacts and reports:

* **metric drift** — metrics are fully deterministic given the pinned
  (scenario, seed), so *any* difference beyond float-noise level is a
  behavioural regression and always fails;
* **timing regressions** — a timing (overall ``wall_s`` or any phase
  total) that exceeds ``baseline * (1 + tolerance)`` fails; timings
  *below* baseline are reported as improvements but never fail;
* **context mismatch** — comparing summaries of different scenarios or
  policies is a configuration error and fails, so the gate can never
  silently pass by comparing apples to oranges;
* **telemetry drift** — when both summaries carry a ``telemetry``
  section, its counter totals and final gauge values are deterministic
  exactly like metrics, so any drift fails; a section present in only
  one summary is a warning (telemetry is opt-in per run).

Timing keys present in only one summary are reported but do not fail:
instrumentation legitimately gains phases across PRs, and a missing
phase cannot hide a regression in ``wall_s``, which is always compared.

``ignore_telemetry`` exempts counter/gauge name prefixes from the
telemetry gate.  The shard-determinism CI job needs this: ``shard/*``
counters describe the *partitioning* (how many messages crossed a shard
boundary), which legitimately differs between ``--shards 1`` and
``--shards 4`` even though the simulation itself is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = ["Finding", "compare_summaries", "format_findings"]

#: Relative tolerance treated as float noise when comparing metrics.
METRIC_RTOL = 1e-12


@dataclass(frozen=True)
class Finding:
    """One comparison outcome.

    ``severity`` is ``"fail"`` (gate must exit non-zero), ``"warn"``
    (surfaced, does not fail) or ``"info"`` (improvements, notes).
    """

    severity: str
    category: str  # "metric_drift" | "timing_regression" | "context" | ...
    key: str
    baseline: Any
    current: Any
    detail: str = ""

    @property
    def fails(self) -> bool:
        return self.severity == "fail"


def _metrics_equal(a: Any, b: Any) -> bool:
    try:
        fa, fb = float(a), float(b)
    except (TypeError, ValueError):
        return a == b
    if fa == fb:
        return True
    scale = max(abs(fa), abs(fb))
    return abs(fa - fb) <= METRIC_RTOL * scale


def _flatten_timings(timings: Mapping[str, Any]) -> Dict[str, float]:
    """``{"wall_s": x, "phases": {p: {"total_s": y}}}`` -> flat key map."""
    flat: Dict[str, float] = {}
    if "wall_s" in timings:
        flat["wall_s"] = float(timings["wall_s"])
    for name, stats in (timings.get("phases") or {}).items():
        total = stats.get("total_s") if isinstance(stats, Mapping) else stats
        if total is not None:
            flat[f"phase/{name}"] = float(total)
    return flat


def compare_summaries(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    tolerance: float = 0.15,
    compare_timings: bool = True,
    ignore_telemetry: Sequence[str] = (),
) -> List[Finding]:
    """Compare two loaded summaries; see the module docstring for rules."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    findings: List[Finding] = []

    # Context: the two artifacts must describe the same experiment.
    b_ctx, c_ctx = baseline.get("context", {}), current.get("context", {})
    for key in sorted(set(b_ctx) | set(c_ctx)):
        if b_ctx.get(key) != c_ctx.get(key):
            findings.append(
                Finding(
                    "fail",
                    "context",
                    key,
                    b_ctx.get(key),
                    c_ctx.get(key),
                    "summaries describe different experiments",
                )
            )

    # Metrics: deterministic, so any drift fails.
    b_met, c_met = baseline.get("metrics", {}), current.get("metrics", {})
    for key in sorted(set(b_met) | set(c_met)):
        if key not in b_met or key not in c_met:
            findings.append(
                Finding(
                    "fail",
                    "metric_drift",
                    key,
                    b_met.get(key),
                    c_met.get(key),
                    "metric present in only one summary",
                )
            )
        elif not _metrics_equal(b_met[key], c_met[key]):
            findings.append(
                Finding("fail", "metric_drift", key, b_met[key], c_met[key])
            )

    # Telemetry: deterministic like metrics, but opt-in per run.
    b_tel, c_tel = baseline.get("telemetry"), current.get("telemetry")
    if (b_tel is None) != (c_tel is None):
        findings.append(
            Finding(
                "warn",
                "telemetry_coverage",
                "telemetry",
                "present" if b_tel is not None else "absent",
                "present" if c_tel is not None else "absent",
                "telemetry section present in only one summary",
            )
        )
    elif b_tel is not None and c_tel is not None:
        findings.extend(
            _compare_telemetry(b_tel, c_tel, ignore=tuple(ignore_telemetry))
        )

    if compare_timings:
        b_tim = _flatten_timings(baseline.get("timings", {}))
        c_tim = _flatten_timings(current.get("timings", {}))
        for key in sorted(set(b_tim) | set(c_tim)):
            if key not in b_tim or key not in c_tim:
                findings.append(
                    Finding(
                        "warn",
                        "timing_coverage",
                        key,
                        b_tim.get(key),
                        c_tim.get(key),
                        "timing present in only one summary",
                    )
                )
                continue
            base, cur = b_tim[key], c_tim[key]
            limit = base * (1.0 + tolerance)
            if cur > limit:
                ratio = cur / base if base > 0 else float("inf")
                findings.append(
                    Finding(
                        "fail",
                        "timing_regression",
                        key,
                        base,
                        cur,
                        f"{ratio:.2f}x baseline exceeds 1+tolerance "
                        f"({1.0 + tolerance:.2f}x)",
                    )
                )
            elif base > 0 and cur < base / (1.0 + tolerance):
                findings.append(
                    Finding(
                        "info",
                        "timing_improvement",
                        key,
                        base,
                        cur,
                        f"{cur / base:.2f}x baseline",
                    )
                )
    return findings


def _compare_telemetry(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    ignore: Tuple[str, ...] = (),
) -> List[Finding]:
    """Gate telemetry totals and final gauge values like metrics."""

    def ignored(name: str) -> bool:
        return any(name.startswith(prefix) for prefix in ignore)

    findings: List[Finding] = []
    b_tot = baseline.get("totals", {})
    c_tot = current.get("totals", {})
    for key in sorted(set(b_tot) | set(c_tot)):
        if ignored(key):
            continue
        if key not in b_tot or key not in c_tot:
            findings.append(
                Finding(
                    "fail",
                    "telemetry_drift",
                    f"total/{key}",
                    b_tot.get(key),
                    c_tot.get(key),
                    "counter present in only one summary",
                )
            )
        elif not _metrics_equal(b_tot[key], c_tot[key]):
            findings.append(
                Finding(
                    "fail", "telemetry_drift", f"total/{key}", b_tot[key], c_tot[key]
                )
            )

    def final(gauges: Mapping[str, Any], name: str) -> Any:
        values = (gauges.get(name) or {}).get("values") or []
        return values[-1] if values else None

    b_g, c_g = baseline.get("gauges", {}), current.get("gauges", {})
    for name in sorted(set(b_g) | set(c_g)):
        if ignored(name):
            continue
        if name not in b_g or name not in c_g:
            findings.append(
                Finding(
                    "fail",
                    "telemetry_drift",
                    f"gauge/{name}",
                    final(b_g, name),
                    final(c_g, name),
                    "gauge present in only one summary",
                )
            )
        elif not _metrics_equal(final(b_g, name), final(c_g, name)):
            findings.append(
                Finding(
                    "fail",
                    "telemetry_drift",
                    f"gauge/{name}",
                    final(b_g, name),
                    final(c_g, name),
                    "final gauge sample drifted",
                )
            )
    return findings


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_findings(findings: List[Finding], *, tolerance: float) -> str:
    """Render findings for the terminal, failures first."""
    if not findings:
        return f"bench-compare: OK (no drift; timing tolerance {tolerance:.0%})"
    order = {"fail": 0, "warn": 1, "info": 2}
    lines = []
    for f in sorted(findings, key=lambda f: (order.get(f.severity, 3), f.key)):
        tail = f" — {f.detail}" if f.detail else ""
        lines.append(
            f"[{f.severity.upper():4s}] {f.category:18s} {f.key}: "
            f"baseline={_fmt_value(f.baseline)} current={_fmt_value(f.current)}{tail}"
        )
    n_fail = sum(1 for f in findings if f.fails)
    lines.append(
        f"bench-compare: {n_fail} failing finding(s), "
        f"{len(findings) - n_fail} informational"
    )
    return "\n".join(lines)
