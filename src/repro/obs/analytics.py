"""Trace analytics: columnar loading and run-health checks.

Everything ``glap analyze`` knows lives here.  A JSONL trace (written by
:class:`~repro.obs.tracer.JsonlTracer`) is loaded *columnar* — one
array per field per event kind, built from the streaming
:func:`~repro.obs.tracer.read_trace` iterator so multi-GB traces never
materialise as a list of dicts — and the derived analyses run on those
columns:

* per-PM timelines and per-kind activity counts;
* the migration flow matrix (source PM x destination PM);
* overload episodes (enter/exit pairing) and their durations;
* conservation checks: every ``eviction outcome="migrated"`` event must
  pair 1:1 with a ``migration`` event on the same (round, vm, src,
  dst); overload enter/exit must alternate per PM; a PM must not sleep
  twice without waking; and — when a telemetry section is supplied —
  messages sent must equal delivered + dropped, overall and per kind;
* trace diffing: per-kind totals and the first divergent round.

:func:`health_report` bundles the checks into one machine-readable
verdict; :func:`format_health_report` renders it for the terminal with
:mod:`repro.util.asciiplot` convergence and overload curves.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.obs.tracer import read_trace
from repro.util.asciiplot import sparkline

__all__ = [
    "TraceFrame",
    "load_frame",
    "frame_from_events",
    "event_counts",
    "pm_activity",
    "pm_timeline",
    "migration_matrix",
    "overload_episodes",
    "check_migration_pairing",
    "check_sleep_wake",
    "check_message_conservation",
    "overloaded_per_round",
    "diff_frames",
    "health_report",
    "format_health_report",
]

#: Envelope fields every event carries (copied into every kind's columns).
_ENVELOPE = ("round", "node")

#: Synthetic column: the event's global position in the trace.  Kept so
#: order-sensitive checks (sleep/wake, overload alternation) can restore
#: file order *across* kinds within a round.
_SEQ = "_seq"


class TraceFrame:
    """A trace held column-wise, grouped by event kind.

    ``frame.columns[kind][field]`` is a list (or, for the envelope
    fields, a ``numpy`` int64 array) with one entry per event of that
    kind, in file order.  Fields missing from an individual event are
    filled with ``None`` so columns of one kind always align.
    """

    def __init__(self, columns: Dict[str, Dict[str, Any]], n_events: int) -> None:
        self.columns = columns
        self.n_events = n_events

    @property
    def kinds(self) -> List[str]:
        return sorted(self.columns)

    def count(self, kind: str) -> int:
        cols = self.columns.get(kind)
        return len(cols["round"]) if cols else 0

    def column(self, kind: str, field: str) -> Any:
        """The ``field`` column of ``kind`` ([] when the kind is absent)."""
        cols = self.columns.get(kind)
        if cols is None:
            return []
        if field not in cols:
            raise KeyError(f"trace has no field {field!r} on kind {kind!r}")
        return cols[field]


def _build_frame(events: Iterable[Mapping[str, Any]]) -> TraceFrame:
    raw: Dict[str, Dict[str, List[Any]]] = {}
    counts: Dict[str, int] = {}
    n_events = 0
    for event in events:
        kind = event["ev"]
        cols = raw.get(kind)
        if cols is None:
            cols = raw[kind] = {name: [] for name in (*_ENVELOPE, _SEQ)}
            counts[kind] = 0
        n_seen = counts[kind]
        cols[_SEQ].append(n_events)
        for key, value in event.items():
            if key == "ev":
                continue
            col = cols.get(key)
            if col is None:
                # A field first seen mid-stream: backfill so it aligns.
                col = cols[key] = [None] * n_seen
            col.append(value)
        for key, col in cols.items():
            if len(col) == n_seen:
                col.append(None)
        counts[kind] = n_seen + 1
        n_events += 1
    columns: Dict[str, Dict[str, Any]] = {}
    for kind, cols in raw.items():
        out: Dict[str, Any] = {}
        for key, col in cols.items():
            if key in _ENVELOPE or key == _SEQ:
                out[key] = np.asarray(col, dtype=np.int64)
            else:
                out[key] = col
        columns[kind] = out
    return TraceFrame(columns, n_events)


def load_frame(source: Union[str, Path, IO[str]]) -> TraceFrame:
    """Columnar-load a JSONL trace via the streaming reader."""
    return _build_frame(read_trace(source))


def frame_from_events(events: Iterable[Mapping[str, Any]]) -> TraceFrame:
    """Build a frame from in-memory events (e.g. a RecordingTracer's)."""
    return _build_frame(events)


# -- descriptive analyses -----------------------------------------------------


def event_counts(frame: TraceFrame) -> Dict[str, int]:
    """Events per kind."""
    return {kind: frame.count(kind) for kind in frame.kinds}


def pm_activity(frame: TraceFrame) -> Dict[int, Dict[str, int]]:
    """Per-PM event counts by kind (keyed by the ``node`` field)."""
    activity: Dict[int, Dict[str, int]] = {}
    for kind in frame.kinds:
        for node in frame.column(kind, "node"):
            per_pm = activity.setdefault(int(node), {})
            per_pm[kind] = per_pm.get(kind, 0) + 1
    return activity


def pm_timeline(frame: TraceFrame, pm_id: int) -> List[Dict[str, Any]]:
    """All events acted by PM ``pm_id``, ordered by round (file order
    within a round).  Each entry is a reassembled event dict."""
    timeline: List[Tuple[int, int, Dict[str, Any]]] = []
    for kind in frame.kinds:
        cols = frame.columns[kind]
        fields = [f for f in cols if f not in _ENVELOPE and f != _SEQ]
        nodes = cols["node"]
        rounds = cols["round"]
        seqs = cols[_SEQ]
        for i in range(len(nodes)):
            if int(nodes[i]) != pm_id:
                continue
            event: Dict[str, Any] = {
                "ev": kind,
                "round": int(rounds[i]),
                "node": pm_id,
            }
            for f in fields:
                value = cols[f][i]
                if value is not None:
                    event[f] = value
            timeline.append((int(rounds[i]), int(seqs[i]), event))
    timeline.sort(key=lambda t: (t[0], t[1]))  # round, then file order
    return [event for _, _, event in timeline]


def migration_matrix(
    frame: TraceFrame, n_pms: Optional[int] = None
) -> np.ndarray:
    """Flow matrix: ``M[src, dst]`` = migrations from src to dst."""
    if frame.count("migration") == 0:
        size = n_pms if n_pms is not None else 0
        return np.zeros((size, size), dtype=np.int64)
    src = np.asarray(frame.column("migration", "node"), dtype=np.int64)
    dst = np.asarray(frame.column("migration", "dst"), dtype=np.int64)
    size = n_pms if n_pms is not None else int(max(src.max(), dst.max())) + 1
    matrix = np.zeros((size, size), dtype=np.int64)
    np.add.at(matrix, (src, dst), 1)
    return matrix


def overload_episodes(
    frame: TraceFrame,
) -> Tuple[List[Tuple[int, int, Optional[int]]], List[str]]:
    """Pair ``overload_enter``/``overload_exit`` into episodes.

    Returns ``(episodes, violations)`` where each episode is
    ``(pm, enter_round, exit_round_or_None)`` — ``None`` marks an
    episode still open when the trace ends.  Violations are alternation
    breaks: an exit without a matching enter, or a second enter while
    one is open.
    """
    marks: List[Tuple[int, int, int, int]] = []  # (round, seq, pm, +1/-1)
    for kind, delta in (("overload_enter", 1), ("overload_exit", -1)):
        if not frame.count(kind):
            continue
        rounds = frame.column(kind, "round")
        nodes = frame.column(kind, "node")
        seqs = frame.column(kind, _SEQ)
        for r, s, pm in zip(rounds, seqs, nodes):
            marks.append((int(r), int(s), int(pm), delta))
    marks.sort(key=lambda m: (m[0], m[1]))  # round, then file order within it
    open_since: Dict[int, int] = {}
    episodes: List[Tuple[int, int, Optional[int]]] = []
    violations: List[str] = []
    for r, _, pm, delta in marks:
        if delta > 0:
            if pm in open_since:
                violations.append(
                    f"PM {pm}: overload_enter at round {r} while an episode "
                    f"from round {open_since[pm]} is still open"
                )
            open_since[pm] = r
        else:
            start = open_since.pop(pm, None)
            if start is None:
                violations.append(
                    f"PM {pm}: overload_exit at round {r} without a "
                    "matching overload_enter"
                )
            else:
                episodes.append((pm, start, r))
    for pm, start in sorted(open_since.items()):
        episodes.append((pm, start, None))
    episodes.sort(key=lambda e: (e[1], e[0]))
    return episodes, violations


def overloaded_per_round(frame: TraceFrame) -> Tuple[np.ndarray, np.ndarray]:
    """The number of simultaneously overloaded PMs per round.

    Returns ``(rounds, counts)`` spanning the trace's round range (empty
    arrays when the trace carries no overload events).
    """
    episodes, _ = overload_episodes(frame)
    if not episodes:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    last = max(e[2] if e[2] is not None else e[1] for e in episodes)
    first = min(e[1] for e in episodes)
    rounds = np.arange(first, last + 1, dtype=np.int64)
    deltas = np.zeros(len(rounds) + 1, dtype=np.int64)
    for _, start, end in episodes:
        deltas[start - first] += 1
        if end is not None:
            deltas[end - first] -= 1
    return rounds, deltas[:-1].cumsum()


# -- conservation checks ------------------------------------------------------


def check_migration_pairing(frame: TraceFrame) -> List[str]:
    """Every accepted eviction must have its migration, and vice versa.

    The GLAP consolidation protocol emits ``eviction`` with
    ``outcome="migrated"`` immediately before the data centre's
    ``migration`` event, so the two multisets of (round, vm, src, dst)
    must match exactly.  Traces with *no* eviction events at all
    (baseline policies migrate without an eviction decision loop) are
    exempt from the migration-side check.
    """
    violations: List[str] = []
    accepted: Counter = Counter()
    if frame.count("eviction"):
        rounds = frame.column("eviction", "round")
        nodes = frame.column("eviction", "node")
        vms = frame.column("eviction", "vm")
        peers = frame.column("eviction", "peer")
        outcomes = frame.column("eviction", "outcome")
        for i in range(len(rounds)):
            if outcomes[i] == "migrated":
                accepted[
                    (int(rounds[i]), int(vms[i]), int(nodes[i]), int(peers[i]))
                ] += 1
    migrations: Counter = Counter()
    if frame.count("migration"):
        rounds = frame.column("migration", "round")
        nodes = frame.column("migration", "node")
        vms = frame.column("migration", "vm")
        dsts = frame.column("migration", "dst")
        for i in range(len(rounds)):
            migrations[
                (int(rounds[i]), int(vms[i]), int(nodes[i]), int(dsts[i]))
            ] += 1
    for key, n in sorted(accepted.items()):
        have = migrations.get(key, 0)
        if have < n:
            r, vm, src, dst = key
            violations.append(
                f"eviction accepted {n}x but migrated {have}x: VM {vm} "
                f"PM {src}->{dst} at round {r}"
            )
    if accepted:  # eviction-emitting policy: migrations must pair back
        for key, n in sorted(migrations.items()):
            have = accepted.get(key, 0)
            if have < n:
                r, vm, src, dst = key
                violations.append(
                    f"migration without accepted eviction: VM {vm} "
                    f"PM {src}->{dst} at round {r} ({n}x vs {have}x)"
                )
    return violations


def check_sleep_wake(frame: TraceFrame) -> List[str]:
    """A PM must not go to sleep twice without waking in between.

    Wake-side events are ``pm_wake`` and ``pm_restart`` (a restarted PM
    re-enters the population awake or asleep, so a restart resets the
    tracking to "unknown" rather than asserting a state).  A wake
    without a prior sleep is legal — ``wake(recover=True)`` revives
    *failed* nodes that never slept.
    """
    marks: List[Tuple[int, int, int, str]] = []
    for kind in ("pm_sleep", "pm_wake", "pm_restart", "pm_crash"):
        if not frame.count(kind):
            continue
        for r, s, pm in zip(
            frame.column(kind, "round"),
            frame.column(kind, _SEQ),
            frame.column(kind, "node"),
        ):
            marks.append((int(r), int(s), int(pm), kind))
    marks.sort(key=lambda m: (m[0], m[1]))  # round, then file order within it
    asleep: Dict[int, int] = {}  # pm -> round it slept
    violations: List[str] = []
    for r, _, pm, kind in marks:
        if kind == "pm_sleep":
            if pm in asleep:
                violations.append(
                    f"PM {pm}: pm_sleep at round {r} while already asleep "
                    f"since round {asleep[pm]}"
                )
            asleep[pm] = r
        else:  # pm_wake / pm_restart / pm_crash all clear tracking
            asleep.pop(pm, None)
    return violations


def check_message_conservation(totals: Mapping[str, float]) -> List[str]:
    """``sent == delivered + dropped`` overall and for every kind.

    ``totals`` is the flat counter map from a telemetry section (keys
    ``net/sent``, ``net/delivered``, ``net/dropped`` plus the per-kind
    ``net/sent/<kind>`` variants).  Returns one violation string per
    broken identity; an empty map passes (no telemetry = nothing to
    check).
    """
    violations: List[str] = []

    def check_one(label: str, sent_key: str, delivered_key: str, dropped_key: str) -> None:
        sent = totals.get(sent_key)
        if sent is None:
            return
        delivered = totals.get(delivered_key, 0.0)
        dropped = totals.get(dropped_key, 0.0)
        if sent != delivered + dropped:
            violations.append(
                f"message conservation broken for {label}: "
                f"sent={sent:g} != delivered={delivered:g} + dropped={dropped:g}"
            )

    check_one("all kinds", "net/sent", "net/delivered", "net/dropped")
    kinds = sorted(
        key[len("net/sent/"):]
        for key in totals
        if key.startswith("net/sent/")
    )
    for kind in kinds:
        check_one(
            kind, f"net/sent/{kind}", f"net/delivered/{kind}", f"net/dropped/{kind}"
        )
    return violations


# -- trace diffing ------------------------------------------------------------


def diff_frames(a: TraceFrame, b: TraceFrame) -> Dict[str, Any]:
    """Structural diff of two traces.

    Returns per-kind event-count deltas (B minus A), the first round at
    which the per-round per-kind counts diverge (``None`` when they
    never do) and an ``identical`` verdict covering both.
    """
    counts_a, counts_b = event_counts(a), event_counts(b)
    deltas = {
        kind: counts_b.get(kind, 0) - counts_a.get(kind, 0)
        for kind in sorted(set(counts_a) | set(counts_b))
        if counts_b.get(kind, 0) != counts_a.get(kind, 0)
    }

    def per_round(frame: TraceFrame) -> Dict[int, Counter]:
        table: Dict[int, Counter] = {}
        for kind in frame.kinds:
            for r in frame.column(kind, "round"):
                table.setdefault(int(r), Counter())[kind] += 1
        return table

    table_a, table_b = per_round(a), per_round(b)
    first_divergence: Optional[int] = None
    for r in sorted(set(table_a) | set(table_b)):
        if table_a.get(r, Counter()) != table_b.get(r, Counter()):
            first_divergence = r
            break
    return {
        "identical": not deltas and first_divergence is None,
        "count_deltas": deltas,
        "first_divergence_round": first_divergence,
        "events_a": a.n_events,
        "events_b": b.n_events,
    }


# -- the health verdict -------------------------------------------------------


def health_report(
    frame: Optional[TraceFrame] = None,
    telemetry: Optional[Mapping[str, Any]] = None,
    min_convergence: Optional[float] = None,
) -> Dict[str, Any]:
    """Run every applicable check; returns the machine-readable verdict.

    ``frame`` is a loaded trace (event-level checks), ``telemetry`` a
    summary's telemetry section (conservation + convergence); either may
    be omitted and the corresponding checks are skipped.
    ``min_convergence`` turns a final Q-table cosine similarity below
    the threshold — or missing convergence data — into a violation.
    """
    if frame is None and telemetry is None:
        raise ValueError("health_report needs a trace frame or a telemetry section")
    report: Dict[str, Any] = {"version": 1, "checks_run": [], "violations": []}

    def fail(check: str, detail: str) -> None:
        report["violations"].append({"check": check, "detail": detail})

    if frame is not None:
        report["events"] = event_counts(frame)
        report["checks_run"] += ["migration_pairing", "overload_alternation", "sleep_wake"]
        for detail in check_migration_pairing(frame):
            fail("migration_pairing", detail)
        episodes, alternation = overload_episodes(frame)
        for detail in alternation:
            fail("overload_alternation", detail)
        for detail in check_sleep_wake(frame):
            fail("sleep_wake", detail)
        durations = [end - start for _, start, end in episodes if end is not None]
        report["overload"] = {
            "episodes": len(episodes),
            "open_at_end": sum(1 for e in episodes if e[2] is None),
            "mean_duration_rounds": (
                float(np.mean(durations)) if durations else 0.0
            ),
            "max_duration_rounds": max(durations) if durations else 0,
        }
        matrix = migration_matrix(frame)
        report["migrations"] = {
            "total": int(matrix.sum()),
            "distinct_routes": int(np.count_nonzero(matrix)),
        }

    if telemetry is not None:
        totals = telemetry.get("totals", {})
        report["checks_run"].append("message_conservation")
        for detail in check_message_conservation(totals):
            fail("message_conservation", detail)
        gauges = telemetry.get("gauges", {})
        convergence = next(
            (g for name, g in sorted(gauges.items()) if name.endswith("q_cosine")),
            None,
        )
        if convergence is not None and convergence.get("values"):
            report["convergence"] = {
                "rounds": list(convergence["rounds"]),
                "values": [float(v) for v in convergence["values"]],
                "final": float(convergence["values"][-1]),
            }
        report["telemetry_totals"] = dict(totals)

    if min_convergence is not None:
        report["checks_run"].append("convergence_threshold")
        final = report.get("convergence", {}).get("final")
        if final is None:
            fail(
                "convergence_threshold",
                "no Q-table convergence gauge found (run with telemetry "
                "and a GLAP policy to sample it)",
            )
        elif final < min_convergence:
            fail(
                "convergence_threshold",
                f"final Q-table cosine similarity {final:.6f} is below "
                f"the required {min_convergence:g}",
            )

    report["healthy"] = not report["violations"]
    return report


def format_health_report(
    report: Mapping[str, Any], frame: Optional[TraceFrame] = None
) -> str:
    """Terminal rendering of :func:`health_report` with ASCII curves."""
    lines: List[str] = []
    verdict = "HEALTHY" if report.get("healthy") else "UNHEALTHY"
    lines.append(f"run health: {verdict}  (checks: {', '.join(report['checks_run'])})")

    events = report.get("events")
    if events:
        total = sum(events.values())
        parts = "  ".join(f"{kind}={n}" for kind, n in sorted(events.items()))
        lines.append(f"events: {total} total  {parts}")

    migrations = report.get("migrations")
    if migrations:
        lines.append(
            f"migrations: {migrations['total']} over "
            f"{migrations['distinct_routes']} distinct src->dst routes"
        )

    overload = report.get("overload")
    if overload:
        lines.append(
            f"overload episodes: {overload['episodes']} "
            f"(open at end: {overload['open_at_end']}, "
            f"mean {overload['mean_duration_rounds']:.1f} rounds, "
            f"max {overload['max_duration_rounds']})"
        )
    if frame is not None:
        rounds, counts = overloaded_per_round(frame)
        if len(rounds):
            lines.append(
                f"overloaded PMs  |{sparkline(counts.astype(float))}| "
                f"rounds {int(rounds[0])}-{int(rounds[-1])}, peak {int(counts.max())}"
            )

    convergence = report.get("convergence")
    if convergence:
        values = convergence["values"]
        lines.append(
            f"Q-table cosine  |{sparkline(values, lo=0.0, hi=1.0)}| "
            f"final {convergence['final']:.4f} "
            f"(sampled rounds {convergence['rounds'][0]}-{convergence['rounds'][-1]})"
        )

    totals = report.get("telemetry_totals")
    if totals:
        sent = totals.get("net/sent")
        if sent is not None:
            lines.append(
                f"messages: sent={totals.get('net/sent', 0):.0f} "
                f"delivered={totals.get('net/delivered', 0):.0f} "
                f"dropped={totals.get('net/dropped', 0):.0f}"
            )

    violations = report.get("violations", [])
    if violations:
        lines.append(f"{len(violations)} violation(s):")
        for v in violations:
            lines.append(f"  [{v['check']}] {v['detail']}")
    else:
        lines.append("0 violations")
    return "\n".join(lines)


def format_diff(diff: Mapping[str, Any]) -> str:
    """Terminal rendering of :func:`diff_frames`."""
    if diff["identical"]:
        return (
            f"traces identical: {diff['events_a']} events, matching "
            "per-round per-kind counts"
        )
    lines = [f"traces differ: {diff['events_a']} vs {diff['events_b']} events"]
    for kind, delta in sorted(diff["count_deltas"].items()):
        lines.append(f"  {kind}: {delta:+d}")
    if diff["first_divergence_round"] is not None:
        lines.append(
            f"first divergent round: {diff['first_divergence_round']}"
        )
    return "\n".join(lines)
