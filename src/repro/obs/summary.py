"""Schema-versioned run summary artifacts (``BENCH_run.json``).

A run summary is the machine-readable record of one benchmarked
execution: what was run (context), how long each phase took (timings)
and what came out (metrics).  It is the unit of comparison for
``glap bench-compare`` and the CI perf gate — two summaries of the same
pinned (scenario, seed) cell must agree on every metric bit-for-bit and
on every timing within tolerance.

Layout (``SCHEMA`` / ``SCHEMA_VERSION`` gate readers)::

    {
      "schema": "glap-bench",
      "schema_version": 1,
      "kind": "run" | "sweep",
      "context":  {"policy": ..., "n_pms": ..., "seed": ..., ...},
      "timings":  {"wall_s": ..., "phases": {name: {"total_s":..., "calls":...}}},
      "metrics":  {name: number, ...},
      "telemetry": {...}            # optional, own TELEMETRY_VERSION
    }

Timings are machine-dependent; metrics are fully deterministic given
(scenario, seed) — the comparison tool treats the two accordingly.  The
optional ``telemetry`` section (:meth:`TelemetryRegistry.to_dict`)
carries counter totals and gauge samples, which are deterministic too
and gated like metrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro.util.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.report import RunResult
    from repro.obs.profiler import PhaseProfiler
    from repro.obs.telemetry import TelemetryRegistry

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "METRIC_FIELDS",
    "run_summary",
    "sweep_summary",
    "write_summary",
    "load_summary",
]

SCHEMA = "glap-bench"
SCHEMA_VERSION = 1

#: The RunResult scalars a run summary records (all deterministic).
METRIC_FIELDS = (
    "slavo",
    "slalm",
    "slav",
    "total_migrations",
    "migration_energy_j",
    "dc_energy_j",
    "final_active",
    "final_overloaded",
    "bfd_baseline_pms",
)


def _envelope(kind: str) -> Dict[str, Any]:
    return {"schema": SCHEMA, "schema_version": SCHEMA_VERSION, "kind": kind}


def run_summary(
    result: "RunResult",
    *,
    wall_s: float,
    profiler: Optional["PhaseProfiler"] = None,
    warmup_rounds: Optional[int] = None,
    trace_events: Optional[int] = None,
    telemetry: Optional["TelemetryRegistry"] = None,
) -> Dict[str, Any]:
    """Build a ``kind="run"`` summary from one finished run."""
    summary = _envelope("run")
    context: Dict[str, Any] = {
        "policy": result.policy,
        "n_pms": result.n_pms,
        "n_vms": result.n_vms,
        "rounds": result.rounds,
        "seed": result.seed,
    }
    if warmup_rounds is not None:
        context["warmup_rounds"] = int(warmup_rounds)
    summary["context"] = context
    timings: Dict[str, Any] = {"wall_s": float(wall_s)}
    if profiler is not None:
        timings["phases"] = profiler.breakdown()
    summary["timings"] = timings
    summary["metrics"] = {name: getattr(result, name) for name in METRIC_FIELDS}
    if trace_events is not None:
        summary["trace_events"] = int(trace_events)
    if telemetry is not None and telemetry.enabled:
        summary["telemetry"] = telemetry.to_dict()
    return summary


def sweep_summary(
    context: Dict[str, Any],
    cell_timings: Dict[str, Dict[str, float]],
    cell_metrics: Dict[str, float],
    *,
    wall_s: float,
) -> Dict[str, Any]:
    """Build a ``kind="sweep"`` summary.

    ``cell_timings`` maps ``"<scenario>/<policy>"`` to
    ``{"total_s": ..., "calls": ...}`` (wall time summed over that
    cell's repetitions); ``cell_metrics`` maps flat metric keys to
    deterministic numbers.
    """
    summary = _envelope("sweep")
    summary["context"] = dict(context)
    summary["timings"] = {"wall_s": float(wall_s), "phases": dict(cell_timings)}
    summary["metrics"] = dict(cell_metrics)
    return summary


def write_summary(summary: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write a summary atomically (tmp file + rename)."""
    _validate(summary, where=str(path))
    atomic_write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n", path)


def load_summary(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a summary written by :func:`write_summary`."""
    try:
        summary = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    _validate(summary, where=str(path))
    return summary


def _validate(summary: Any, *, where: str) -> None:
    if not isinstance(summary, dict):
        raise ValueError(f"{where}: summary must be a JSON object")
    if summary.get("schema") != SCHEMA:
        raise ValueError(
            f"{where}: schema {summary.get('schema')!r} is not {SCHEMA!r}"
        )
    version = summary.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{where}: schema_version {version!r} unsupported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    for section in ("context", "timings", "metrics"):
        if not isinstance(summary.get(section), dict):
            raise ValueError(f"{where}: missing or malformed {section!r} section")
    if "wall_s" not in summary["timings"]:
        raise ValueError(f"{where}: timings section lacks wall_s")
    telemetry = summary.get("telemetry")
    if telemetry is not None:
        from repro.obs.telemetry import TELEMETRY_VERSION

        if not isinstance(telemetry, dict):
            raise ValueError(f"{where}: telemetry section must be an object")
        t_version = telemetry.get("version")
        if t_version != TELEMETRY_VERSION:
            raise ValueError(
                f"{where}: telemetry version {t_version!r} unsupported "
                f"(this build reads version {TELEMETRY_VERSION})"
            )
        for section in ("totals", "gauges"):
            if not isinstance(telemetry.get(section), dict):
                raise ValueError(
                    f"{where}: telemetry section lacks {section!r} map"
                )
