"""Phase profiling: a wall-time breakdown of where a run spends its time.

A simulation round is a fixed pipeline — trace refresh, fault
scheduling, the gossip round (learning / aggregation / consolidation
depending on the GLAP phase), policy bookkeeping, metric sampling — and
perf regressions almost always live in exactly one stage.  The profiler
wraps each stage in a context-manager timer and accumulates per-phase
totals, so ``glap run --profile`` prints (and ``BENCH_run.json``
records) a breakdown instead of one opaque wall-time number.

Nesting: phases may nest (e.g. ``consolidation`` and
``network_delivery`` run inside ``engine_round``).  Each phase
accumulates its own inclusive time, and :attr:`PhaseProfiler.top_level_s`
sums only depth-0 spans — that is the figure comparable to the measured
wall time of the instrumented region (the test suite asserts the two
agree within tolerance).

The default at every call site is :data:`NULL_PROFILER`; hot paths guard
with ``if profiler.enabled:`` so unprofiled runs pay one attribute check
per stage.  Profiling reads the clock but never the RNG, so enabling it
cannot perturb results.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

__all__ = ["PhaseStats", "NullProfiler", "NULL_PROFILER", "PhaseProfiler"]


class PhaseStats:
    """Accumulated inclusive wall time and entry count of one phase."""

    __slots__ = ("name", "total_s", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.calls = 0

    def as_dict(self) -> Dict[str, float]:
        return {"total_s": self.total_s, "calls": self.calls}

    def __repr__(self) -> str:
        return f"PhaseStats({self.name!r}, total_s={self.total_s:.6f}, calls={self.calls})"


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """No-op profiler: the zero-overhead default at every call site."""

    enabled: bool = False

    def phase(self, name: str) -> _NullSpan:
        return _NULL_SPAN


#: Shared no-op instance installed everywhere by default.
NULL_PROFILER = NullProfiler()


class _Span:
    """One timed entry into a phase (allocated per ``with`` block)."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._profiler._depth += 1
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._t0
        prof = self._profiler
        prof._depth -= 1
        stats = prof._phases.get(self._name)
        if stats is None:
            stats = prof._phases[self._name] = PhaseStats(self._name)
        stats.total_s += elapsed
        stats.calls += 1
        if prof._depth == 0:
            prof.top_level_s += elapsed


class PhaseProfiler(NullProfiler):
    """Accumulates per-phase wall time; see the module docstring.

    Usage::

        prof = PhaseProfiler()
        with prof.phase("engine_round"):
            ...
        prof.breakdown()   # {"engine_round": {"total_s": ..., "calls": ...}}
    """

    enabled = True

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseStats] = {}
        self._depth = 0
        #: Wall time accumulated by depth-0 spans only (no double count).
        self.top_level_s = 0.0

    def phase(self, name: str) -> _Span:  # type: ignore[override]
        return _Span(self, name)

    # -- reporting ----------------------------------------------------------

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{"total_s": ..., "calls": ...}``, insertion order."""
        return {name: stats.as_dict() for name, stats in self._phases.items()}

    def items(self) -> List[Tuple[str, PhaseStats]]:
        """Phases sorted by descending total time."""
        return sorted(self._phases.items(), key=lambda kv: -kv[1].total_s)

    def format(self) -> str:
        """A human-readable breakdown table (largest phase first)."""
        if not self._phases:
            return "phase breakdown: (no phases recorded)"
        total = self.top_level_s or sum(s.total_s for s in self._phases.values())
        width = max(len(name) for name in self._phases)
        lines = [f"{'phase'.ljust(width)}  {'total':>10s}  {'calls':>8s}  {'share':>6s}"]
        for name, stats in self.items():
            share = stats.total_s / total if total > 0 else 0.0
            lines.append(
                f"{name.ljust(width)}  {stats.total_s:9.3f}s  {stats.calls:8d}  {share:5.1%}"
            )
        lines.append(f"{'(top-level total)'.ljust(width)}  {self.top_level_s:9.3f}s")
        return "\n".join(lines)
