"""Phase profiling: a wall-time breakdown of where a run spends its time.

A simulation round is a fixed pipeline — trace refresh, fault
scheduling, the gossip round (learning / aggregation / consolidation
depending on the GLAP phase), policy bookkeeping, metric sampling — and
perf regressions almost always live in exactly one stage.  The profiler
wraps each stage in a context-manager timer and accumulates per-phase
totals, so ``glap run --profile`` prints (and ``BENCH_run.json``
records) a breakdown instead of one opaque wall-time number.

Nesting: phases may nest (e.g. ``consolidation`` and
``network_delivery`` run inside ``engine_round``).  Each phase
accumulates its own *inclusive* time plus a *self* time (inclusive
minus the time spent in directly nested spans), and records the parent
phase it was first entered under — which is what lets
:meth:`PhaseProfiler.format` render a tree with a percent-of-parent
column, siblings sorted by self time so the hot phase leads.
:attr:`PhaseProfiler.top_level_s` sums only depth-0 spans — that is
the figure comparable to the measured wall time of the instrumented
region (the test suite asserts the two agree within tolerance).

External timings (per-shard worker compute measured in another
process) fold in through :meth:`PhaseProfiler.add`; they join the
breakdown and the tree but never :attr:`top_level_s`, which stays the
coordinator's own wall time.

The default at every call site is :data:`NULL_PROFILER`; hot paths guard
with ``if profiler.enabled:`` so unprofiled runs pay one attribute check
per stage.  Profiling reads the clock but never the RNG, so enabling it
cannot perturb results.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = ["PhaseStats", "NullProfiler", "NULL_PROFILER", "PhaseProfiler"]


class PhaseStats:
    """Accumulated wall time and entry count of one phase.

    ``total_s`` is inclusive (nested spans count), ``self_s`` excludes
    time spent in directly nested spans, and ``parent`` is the phase
    this one was first entered under (``None`` for top-level phases).
    """

    __slots__ = ("name", "total_s", "self_s", "calls", "parent")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.self_s = 0.0
        self.calls = 0
        self.parent: Optional[str] = None

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "total_s": self.total_s,
            "self_s": self.self_s,
            "calls": self.calls,
        }
        if self.parent is not None:
            out["parent"] = self.parent  # type: ignore[assignment]
        return out

    def __repr__(self) -> str:
        return f"PhaseStats({self.name!r}, total_s={self.total_s:.6f}, calls={self.calls})"


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """No-op profiler: the zero-overhead default at every call site."""

    enabled: bool = False

    def phase(self, name: str) -> _NullSpan:
        return _NULL_SPAN


#: Shared no-op instance installed everywhere by default.
NULL_PROFILER = NullProfiler()


class _Span:
    """One timed entry into a phase (allocated per ``with`` block)."""

    __slots__ = ("_profiler", "_name", "_t0", "_child_s")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._child_s = 0.0

    def __enter__(self) -> "_Span":
        self._profiler._stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._t0
        prof = self._profiler
        prof._stack.pop()
        stats = prof._phases.get(self._name)
        if stats is None:
            stats = prof._phases[self._name] = PhaseStats(self._name)
        stats.total_s += elapsed
        stats.self_s += elapsed - self._child_s
        stats.calls += 1
        if prof._stack:
            parent = prof._stack[-1]
            parent._child_s += elapsed
            if stats.parent is None:
                stats.parent = parent._name
        else:
            prof.top_level_s += elapsed


class PhaseProfiler(NullProfiler):
    """Accumulates per-phase wall time; see the module docstring.

    Usage::

        prof = PhaseProfiler()
        with prof.phase("engine_round"):
            ...
        prof.breakdown()   # {"engine_round": {"total_s": ..., ...}}
    """

    enabled = True

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseStats] = {}
        self._stack: List[_Span] = []
        #: Wall time accumulated by depth-0 spans only (no double count).
        self.top_level_s = 0.0

    def phase(self, name: str) -> _Span:  # type: ignore[override]
        return _Span(self, name)

    def add(
        self,
        name: str,
        seconds: float,
        calls: int = 1,
        parent: Optional[str] = None,
    ) -> None:
        """Fold an externally measured timing into the breakdown.

        Used by the shard coordinator to merge per-worker compute and
        barrier-wait times measured in other processes.  The phase gets
        ``seconds`` of both inclusive and self time (external timings
        carry no nesting) and joins the tree under ``parent``, but never
        contributes to :attr:`top_level_s` — that remains this process's
        own wall time.
        """
        stats = self._phases.get(name)
        if stats is None:
            stats = self._phases[name] = PhaseStats(name)
        stats.total_s += seconds
        stats.self_s += seconds
        stats.calls += calls
        if parent is not None and stats.parent is None:
            stats.parent = parent

    # -- reporting ----------------------------------------------------------

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{"total_s", "self_s", "calls"[, "parent"]}``,
        insertion order."""
        return {name: stats.as_dict() for name, stats in self._phases.items()}

    def items(self) -> List[Tuple[str, PhaseStats]]:
        """Phases sorted by descending total time."""
        return sorted(self._phases.items(), key=lambda kv: -kv[1].total_s)

    def format(self) -> str:
        """A human-readable tree: siblings by descending self time, with
        a percent-of-parent column (top-level phases against the
        top-level total)."""
        if not self._phases:
            return "phase breakdown: (no phases recorded)"
        children: Dict[Optional[str], List[PhaseStats]] = {}
        for stats in self._phases.values():
            # A recorded parent that was itself never recorded (external
            # add() against a phase this run did not enter) roots the tree.
            parent = stats.parent if stats.parent in self._phases else None
            children.setdefault(parent, []).append(stats)
        rows: List[Tuple[int, PhaseStats, float]] = []

        def walk(parent: Optional[str], parent_total: float, depth: int) -> None:
            for stats in sorted(
                children.get(parent, []), key=lambda s: -s.self_s
            ):
                share = stats.total_s / parent_total if parent_total > 0 else 0.0
                rows.append((depth, stats, share))
                walk(stats.name, stats.total_s, depth + 1)

        root_total = self.top_level_s or sum(
            s.total_s for s in children.get(None, [])
        )
        walk(None, root_total, 0)
        width = max(len(name) + 2 * depth for depth, s, _ in rows for name in [s.name])
        width = max(width, len("(top-level total)"))
        lines = [
            f"{'phase'.ljust(width)}  {'total':>10s}  {'self':>10s}"
            f"  {'calls':>8s}  {'%parent':>7s}"
        ]
        for depth, stats, share in rows:
            label = "  " * depth + stats.name
            lines.append(
                f"{label.ljust(width)}  {stats.total_s:9.3f}s  "
                f"{stats.self_s:9.3f}s  {stats.calls:8d}  {share:6.1%}"
            )
        lines.append(f"{'(top-level total)'.ljust(width)}  {self.top_level_s:9.3f}s")
        return "\n".join(lines)
