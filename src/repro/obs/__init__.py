"""Observability: structured tracing, phase profiling, benchmark artifacts.

The subsystem has four layers, from emission to CI enforcement:

* :mod:`repro.obs.tracer` — typed JSONL event tracing with a
  zero-overhead no-op default (``NULL_TRACER``);
* :mod:`repro.obs.profiler` — context-manager phase timers producing a
  per-phase wall-time breakdown (``NULL_PROFILER`` default);
* :mod:`repro.obs.summary` — the schema-versioned ``BENCH_run.json``
  run-summary artifact;
* :mod:`repro.obs.compare` — the ``glap bench-compare`` diff used by the
  CI ``perf-smoke`` gate;
* :mod:`repro.obs.telemetry` — the per-round counter/gauge registry
  behind ``glap run --telemetry`` (``NULL_TELEMETRY`` default);
* :mod:`repro.obs.analytics` — columnar trace loading, conservation
  checks and the ``glap analyze`` health report.
"""

from repro.obs.analytics import (
    TraceFrame,
    diff_frames,
    format_health_report,
    frame_from_events,
    health_report,
    load_frame,
)
from repro.obs.compare import Finding, compare_summaries, format_findings
from repro.obs.observers import OverloadTraceObserver
from repro.obs.profiler import NULL_PROFILER, NullProfiler, PhaseProfiler, PhaseStats
from repro.obs.summary import (
    METRIC_FIELDS,
    SCHEMA,
    SCHEMA_VERSION,
    load_summary,
    run_summary,
    sweep_summary,
    write_summary,
)
from repro.obs.telemetry import (
    TELEMETRY_VERSION,
    NULL_TELEMETRY,
    Telemetry,
    TelemetryRegistry,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    JsonlTracer,
    RecordingTracer,
    Tracer,
    load_trace,
    read_trace,
    read_trace_batches,
)

__all__ = [
    "EVENT_KINDS",
    "Tracer",
    "NULL_TRACER",
    "JsonlTracer",
    "RecordingTracer",
    "read_trace",
    "read_trace_batches",
    "load_trace",
    "TELEMETRY_VERSION",
    "Telemetry",
    "NULL_TELEMETRY",
    "TelemetryRegistry",
    "TraceFrame",
    "load_frame",
    "frame_from_events",
    "diff_frames",
    "health_report",
    "format_health_report",
    "NullProfiler",
    "NULL_PROFILER",
    "PhaseProfiler",
    "PhaseStats",
    "OverloadTraceObserver",
    "SCHEMA",
    "SCHEMA_VERSION",
    "METRIC_FIELDS",
    "run_summary",
    "sweep_summary",
    "write_summary",
    "load_summary",
    "Finding",
    "compare_summaries",
    "format_findings",
]
