"""Streaming heartbeat sink: one JSON line per cadence tick of a live run.

Post-hoc observability (telemetry series, traces, bench summaries) only
becomes readable after a run finishes — useless for a multi-hour
100k-PM or multi-shard federation run.  The heartbeat is the live
counterpart: the runner appends one schema-versioned JSONL record per
cadence tick with everything an operator (or ``glap watch``) needs —
round and stage, telemetry counter deltas since the previous tick, the
latest gauge samples (live Q-cosine), PM activity levels, shard
imbalance, and ETA inputs — through the single-``write(2)``
``O_APPEND`` appends of :func:`repro.util.io.append_jsonl`, so a
concurrent tail-reader never sees a torn interior line.

House rule, same as the tracer/profiler/telemetry: the heartbeat reads
clocks but **never the simulation's RNG streams**, so a fully
instrumented run stays bit-identical to the golden digests.  To make
that testable, every record keeps its deterministic payload (round,
stage, counter deltas, gauge values, PM counts) at the top level and
quarantines everything wall-clock-derived — elapsed seconds, unix
timestamps, the ``shard/phase_max_over_mean`` imbalance gauge (a ratio
of *measured worker compute times*) — under the ``"timing"`` key.  Two
runs of the same (scenario, seed) produce tick streams identical
modulo ``"timing"``; the golden suite asserts exactly that.

Resume continuity: a restored run calls :meth:`HeartbeatWriter.start`
with ``resumed_from`` set.  The writer repairs a torn tail line (the
previous process may have died mid-append), reconstructs the cumulative
counter baseline by summing the surviving ticks' deltas, appends a
``resumed`` marker, and continues the same file — so a run interrupted
at a checkpoint boundary yields a tick stream identical to the
uninterrupted run's, with one extra marker line.

Record kinds (all carry ``v`` = :data:`HEARTBEAT_VERSION`)::

    header    first line: run identity + ETA inputs (rounds_total, ...)
    tick      one per cadence tick (see above)
    resumed   a restored run continued this file (``resumed_from``)
    abort     the run died: invariant violation / exception / signal
    complete  the run finished cleanly
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from repro.util.io import append_jsonl, atomic_write_text, iter_jsonl

__all__ = [
    "HEARTBEAT_SCHEMA",
    "HEARTBEAT_VERSION",
    "HEARTBEAT_KINDS",
    "HeartbeatWriter",
    "read_heartbeat",
    "load_heartbeat",
]

HEARTBEAT_SCHEMA = "glap-heartbeat"
HEARTBEAT_VERSION = 1

#: The closed vocabulary of record kinds.
HEARTBEAT_KINDS = frozenset({"header", "tick", "resumed", "abort", "complete"})


class HeartbeatWriter:
    """Appends the heartbeat stream of one run (see module docstring).

    The runner drives it: :meth:`start` once before the warmup loop
    (or on resume), :meth:`due` + :meth:`tick` after each round,
    :meth:`complete` at the end, :meth:`abort` from the flight
    recorder's failure path.  ``every`` is the cadence in *absolute*
    rounds (warmup + evaluation share one counter), checked against the
    deterministic round index so resumed runs stay phase-aligned.
    """

    def __init__(self, path: Union[str, Path], every: int = 1) -> None:
        if every <= 0:
            raise ValueError(f"heartbeat cadence must be > 0, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.ticks_written = 0
        self._started = False
        self._t0 = time.perf_counter()
        #: Cumulative counter totals at the previous tick (delta base).
        self._prev: Dict[str, float] = {}

    # -- lifecycle ----------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (ticks are only legal after)."""
        return self._started

    def start(
        self,
        *,
        policy: str,
        n_pms: int,
        n_vms: int,
        seed: int,
        rounds_total: int,
        warmup_rounds: int,
        eval_rounds: int,
        resumed_from: Optional[int] = None,
    ) -> None:
        """Open the stream: write the header, or continue an existing file.

        A fresh run (``resumed_from=None``) truncates any stale file via
        an atomic header write.  A resume repairs a torn tail, rebuilds
        the counter-delta baseline from the surviving ticks, and appends
        a ``resumed`` marker carrying the evaluation round the run
        continues from.
        """
        self._t0 = time.perf_counter()
        self._started = True
        if resumed_from is not None and self.path.exists() and self.path.stat().st_size:
            self._repair_tail()
            self._rebuild_baseline()
            append_jsonl(
                {
                    "v": HEARTBEAT_VERSION,
                    "kind": "resumed",
                    "resumed_from": int(resumed_from),
                    "unix_time": time.time(),
                },
                self.path,
            )
            return
        header = {
            "v": HEARTBEAT_VERSION,
            "kind": "header",
            "schema": HEARTBEAT_SCHEMA,
            "policy": str(policy),
            "n_pms": int(n_pms),
            "n_vms": int(n_vms),
            "seed": int(seed),
            "rounds_total": int(rounds_total),
            "warmup_rounds": int(warmup_rounds),
            "eval_rounds": int(eval_rounds),
            "every": self.every,
            "unix_time": time.time(),
        }
        atomic_write_text(json.dumps(header, separators=(",", ":")) + "\n", self.path)

    def _repair_tail(self) -> None:
        """Drop a torn (newline-less) final line left by a dead writer."""
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            idx = data.rfind(b"\n")
            self.path.write_bytes(data[: idx + 1] if idx >= 0 else b"")

    def _rebuild_baseline(self) -> None:
        """Recover cumulative totals at the last tick by summing deltas.

        Each tick stores counter *deltas* since its predecessor, so the
        per-key sum over every surviving tick equals the cumulative
        total at the last tick — the exact baseline the next tick's
        deltas must be computed against for the stream to continue as
        if never interrupted.
        """
        prev: Dict[str, float] = {}
        for record in read_heartbeat(self.path, allow_partial_tail=True):
            if record.get("kind") != "tick":
                continue
            for key, delta in record.get("counters", {}).items():
                prev[key] = prev.get(key, 0.0) + float(delta)
        self._prev = prev

    # -- per-round ----------------------------------------------------------

    def due(self, round_index: int) -> bool:
        """Whether ``round_index`` lands on the cadence."""
        return round_index % self.every == 0

    def tick(
        self,
        *,
        round_index: int,
        stage: str,
        eval_round: Optional[int] = None,
        telemetry: Optional[Any] = None,
        active_pms: Optional[int] = None,
        overloaded_pms: Optional[int] = None,
        shard_imbalance: Optional[float] = None,
    ) -> None:
        """Append one tick record for the round just executed.

        ``telemetry`` is a :class:`~repro.obs.telemetry.TelemetryRegistry`
        (or None): its cumulative totals are snapshotted and stored as
        deltas since the previous tick, and the latest sample of every
        gauge rides along.  Everything wall-clock-derived goes under
        ``"timing"`` (see module docstring).
        """
        if not self._started:
            raise RuntimeError("HeartbeatWriter.tick before start()")
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        if telemetry is not None and getattr(telemetry, "enabled", False):
            totals = telemetry.totals()
            for key, value in totals.items():
                delta = value - self._prev.get(key, 0.0)
                if delta != 0.0:
                    counters[key] = delta
            self._prev = dict(totals)
            for name, samples in telemetry.gauges.items():
                if samples["values"]:
                    gauges[name] = float(samples["values"][-1])
        record: Dict[str, Any] = {
            "v": HEARTBEAT_VERSION,
            "kind": "tick",
            "round": int(round_index),
            "stage": str(stage),
        }
        if eval_round is not None:
            record["eval_round"] = int(eval_round)
        if active_pms is not None:
            record["active_pms"] = int(active_pms)
        if overloaded_pms is not None:
            record["overloaded_pms"] = int(overloaded_pms)
        record["counters"] = counters
        record["gauges"] = gauges
        timing: Dict[str, float] = {
            "wall_s": time.perf_counter() - self._t0,
            "unix_time": time.time(),
        }
        if shard_imbalance is not None:
            timing["shard/phase_max_over_mean"] = float(shard_imbalance)
        record["timing"] = timing
        append_jsonl(record, self.path)
        self.ticks_written += 1

    # -- terminal markers ---------------------------------------------------

    def abort(
        self,
        reason: str,
        error: Optional[str] = None,
        round_index: Optional[int] = None,
    ) -> None:
        """Append an ``abort`` marker (the run is dying)."""
        record: Dict[str, Any] = {
            "v": HEARTBEAT_VERSION,
            "kind": "abort",
            "reason": str(reason),
            "unix_time": time.time(),
        }
        if error is not None:
            record["error"] = str(error)
        if round_index is not None:
            record["round"] = int(round_index)
        append_jsonl(record, self.path)

    def complete(self) -> None:
        """Append the clean-completion marker."""
        append_jsonl(
            {
                "v": HEARTBEAT_VERSION,
                "kind": "complete",
                "ticks": self.ticks_written,
                "timing": {
                    "wall_s": time.perf_counter() - self._t0,
                    "unix_time": time.time(),
                },
            },
            self.path,
        )


def read_heartbeat(
    source: Union[str, Path, IO[str]], allow_partial_tail: bool = False
) -> Iterator[Dict[str, Any]]:
    """Yield validated heartbeat records.

    Validation mirrors :func:`repro.obs.tracer.read_trace`: every record
    must be an object with a supported ``v`` and a known ``kind``, and a
    malformed line raises ``ValueError`` with its 1-based line number —
    except a torn final line under ``allow_partial_tail=True``, which is
    the normal state of a file being appended to right now.
    """
    for lineno, record in iter_jsonl(
        source, allow_partial_tail=allow_partial_tail, where="heartbeat"
    ):
        if not isinstance(record, dict):
            raise ValueError(f"heartbeat line {lineno}: expected an object")
        if record.get("v") != HEARTBEAT_VERSION:
            raise ValueError(
                f"heartbeat line {lineno}: unsupported version {record.get('v')!r} "
                f"(this build reads version {HEARTBEAT_VERSION})"
            )
        if record.get("kind") not in HEARTBEAT_KINDS:
            raise ValueError(
                f"heartbeat line {lineno}: unknown kind {record.get('kind')!r}"
            )
        yield record


def load_heartbeat(
    source: Union[str, Path, IO[str]], allow_partial_tail: bool = True
) -> List[Dict[str, Any]]:
    """Eagerly read a heartbeat stream (tail-tolerant by default —
    the common caller is ``glap watch`` against a live file)."""
    return list(read_heartbeat(source, allow_partial_tail=allow_partial_tail))
