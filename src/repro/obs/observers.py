"""Trace-emitting observers.

The overload lifecycle (a PM crossing into and out of overload) is a
*derived* condition, not a single decision point in the code, so it is
traced by an end-of-round observer rather than by an inline emission:
:class:`OverloadTraceObserver` diffs the set of overloaded PMs against
the previous round and emits ``overload_enter`` / ``overload_exit``
events for the changes.  Like every observer it is strictly read-only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet

from repro.obs.tracer import Tracer
from repro.simulator.observer import Observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.cluster import DataCenter
    from repro.simulator.engine import Simulation

__all__ = ["OverloadTraceObserver"]


class OverloadTraceObserver(Observer):
    """Emits ``overload_enter``/``overload_exit`` events on state changes.

    A PM is overloaded when any resource's demand meets/exceeds capacity
    (the paper's definition); sleeping PMs are never overloaded.  The
    first observed round emits an ``overload_enter`` for every PM that
    is already overloaded, so the trace is self-contained.
    """

    def __init__(self, dc: "DataCenter", tracer: Tracer) -> None:
        self.dc = dc
        self.tracer = tracer
        self._overloaded: FrozenSet[int] = frozenset()

    def rearm(self) -> None:
        """Re-derive the overloaded set from current data-centre state.

        Used when resuming from a checkpoint: the set is recomputable, so
        it is not serialised — re-arming after state restore makes the
        first post-resume round diff against the same baseline an
        uninterrupted run would have.
        """
        self._overloaded = frozenset(
            pm.pm_id
            for pm in self.dc.pms
            if not pm.asleep and pm.is_overloaded()
        )

    def observe(self, round_index: int, sim: "Simulation") -> None:
        if not self.tracer.enabled:
            return
        now = frozenset(
            pm.pm_id
            for pm in self.dc.pms
            if not pm.asleep and pm.is_overloaded()
        )
        for pm_id in sorted(now - self._overloaded):
            self.tracer.emit("overload_enter", round_index, pm_id)
        for pm_id in sorted(self._overloaded - now):
            self.tracer.emit("overload_exit", round_index, pm_id)
        self._overloaded = now
