"""Structured event tracing.

GLAP's claims are about *dynamics* — migration bursts, Q-table pushes,
PMs dropping off to sleep — yet aggregate metrics only show the end
state.  The tracer turns the simulation's decision points into a typed,
machine-readable event stream (JSON Lines, one event per line) with
round and node provenance, so a regression can be localised to "round
212, PM 17 started rejecting on Q_in" instead of re-running with print
statements.

Design rules:

* **Zero-overhead default.**  Every instrumented call site holds a
  :class:`Tracer` whose base implementation is a no-op with
  ``enabled = False``; hot paths guard emission with ``if tr.enabled:``
  so an untraced run does one attribute load and a falsy branch per
  site.  Tracing never consumes randomness, so even an *enabled* tracer
  leaves the simulation bit-identical (the golden suite asserts this).
* **Typed events.**  Every event kind is registered in
  :data:`EVENT_KINDS`; emitting an unknown kind raises immediately, so a
  typo cannot silently produce an event no reader looks for.
* **Provenance first.**  Every event carries ``ev`` (kind), ``round``
  (simulation round index, warmup included) and ``node`` (the acting
  PM/node id, or ``-1`` for system-level events).

Event vocabulary::

    migration       VM moved between PMs (vm, src, dst, energy_j)
    eviction        one MIGRATE-loop decision (peer, outcome, ...)
    q_pull          learning: VM profiles pulled from a peer and trained
    q_push          aggregation: push-pull Q-table merge with a peer
    pm_sleep        a PM emptied itself and switched off
    pm_wake         a sleeping node was woken
    pm_crash        fault injection crashed a node
    pm_restart      fault injection restarted a crashed node
    overload_enter  a PM crossed into overload (any resource >= capacity)
    overload_exit   a PM left overload

Use :func:`read_trace` to load a trace back; it validates the envelope
so round-tripping is lossless.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Union

from repro.util.io import iter_jsonl

__all__ = [
    "EVENT_KINDS",
    "Tracer",
    "NULL_TRACER",
    "JsonlTracer",
    "RecordingTracer",
    "read_trace",
    "read_trace_batches",
    "load_trace",
]

#: The closed vocabulary of event kinds (see module docstring).
EVENT_KINDS = frozenset(
    {
        "migration",
        "eviction",
        "q_pull",
        "q_push",
        "pm_sleep",
        "pm_wake",
        "pm_crash",
        "pm_restart",
        "overload_enter",
        "overload_exit",
    }
)

#: Keys every event carries, in stable serialisation order.
ENVELOPE_KEYS = ("ev", "round", "node")


class Tracer:
    """No-op tracer: the zero-overhead default at every call site.

    Instrumented code holds one of these and guards with
    ``if tracer.enabled:`` — the base class never records anything, so
    the untraced hot path costs a single attribute check.
    """

    #: Call sites branch on this instead of emitting unconditionally.
    enabled: bool = False

    def emit(self, kind: str, round_index: int, node: int, **fields: Any) -> None:
        """Record one event.  The base implementation discards it."""

    def close(self) -> None:
        """Release any underlying resource.  Idempotent."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


#: Shared no-op instance installed everywhere by default.
NULL_TRACER = Tracer()


def _check_kind(kind: str) -> None:
    if kind not in EVENT_KINDS:
        raise ValueError(
            f"unknown event kind {kind!r}; registered kinds: {sorted(EVENT_KINDS)}"
        )


def _event_dict(kind: str, round_index: int, node: int, fields: Dict[str, Any]) -> Dict[str, Any]:
    _check_kind(kind)
    for key in ENVELOPE_KEYS:
        if key in fields:
            raise ValueError(f"field {key!r} collides with the event envelope")
    event: Dict[str, Any] = {"ev": kind, "round": int(round_index), "node": int(node)}
    event.update(fields)
    return event


class JsonlTracer(Tracer):
    """Writes one compact JSON object per event to a file or stream.

    Accepts a path (opened lazily, closed by :meth:`close`) or an
    already-open text stream (left open for the caller to manage).
    """

    enabled = True

    def __init__(self, sink: Union[str, Path, IO[str]]) -> None:
        if isinstance(sink, (str, Path)):
            self._fh: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = sink
            self._owns_fh = False
        self.events_emitted = 0

    def emit(self, kind: str, round_index: int, node: int, **fields: Any) -> None:
        event = _event_dict(kind, round_index, node, fields)
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_emitted += 1

    def close(self) -> None:
        if self._owns_fh and not self._fh.closed:
            self._fh.close()


class RecordingTracer(Tracer):
    """Keeps events in memory — the test-friendly tracer."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, kind: str, round_index: int, node: int, **fields: Any) -> None:
        self.events.append(_event_dict(kind, round_index, node, fields))

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        _check_kind(kind)
        return [e for e in self.events if e["ev"] == kind]


def read_trace(
    source: Union[str, Path, IO[str]], allow_partial_tail: bool = False
) -> Iterator[Dict[str, Any]]:
    """Yield the events of a JSONL trace, validating the envelope.

    Raises ``ValueError`` on a malformed line (bad JSON, missing
    envelope key, or unregistered event kind) with the 1-based line
    number, so a truncated or corrupted trace fails loudly.

    ``allow_partial_tail=True`` tolerates a torn *final* line — the
    state of a live trace whose writer is mid-``write`` (or died there)
    — by stopping before it instead of raising.  A bad line with more
    data after it is corruption either way and still raises, so tail-
    following a live run never silently skips interior damage.
    """
    for lineno, event in iter_jsonl(
        source, allow_partial_tail=allow_partial_tail, where="trace"
    ):
        if not isinstance(event, dict):
            raise ValueError(f"trace line {lineno}: expected an object")
        missing = [k for k in ENVELOPE_KEYS if k not in event]
        if missing:
            raise ValueError(f"trace line {lineno}: missing envelope keys {missing}")
        if event["ev"] not in EVENT_KINDS:
            raise ValueError(
                f"trace line {lineno}: unknown event kind {event['ev']!r}"
            )
        yield event


def read_trace_batches(
    source: Union[str, Path, IO[str]],
    batch_size: int = 65536,
    allow_partial_tail: bool = False,
) -> Iterator[List[Dict[str, Any]]]:
    """Stream a trace in bounded batches of validated events.

    The batched shape lets columnar consumers (``glap analyze``) process
    multi-GB traces with at most ``batch_size`` event dicts alive at
    once, while amortising per-event overhead.  The final batch may be
    shorter; an empty trace yields nothing.  ``allow_partial_tail``
    passes through to :func:`read_trace`.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be > 0, got {batch_size}")
    batch: List[Dict[str, Any]] = []
    for event in read_trace(source, allow_partial_tail=allow_partial_tail):
        batch.append(event)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def load_trace(source: Union[str, Path, IO[str]]) -> List[Dict[str, Any]]:
    """Eagerly read a whole trace (see :func:`read_trace`)."""
    return list(read_trace(source))
