"""Snapshot and restore of complete run state.

Save side: :func:`save_checkpoint` serialises a :class:`RunEnv` — the
bundle of live objects the experiment runner drives — into one
schema-versioned JSON file, written atomically so a crash mid-write can
never leave a truncated checkpoint.

Restore side: :func:`restore_checkpoint` replays the runner's *fresh*
setup path deterministically (build simulation, install observability
and faults, attach the policy), then overwrites every piece of mutable
state from the file, and restores the RNG bit-generator states **last**
— any randomness consumed while rebuilding (overlay bootstraps, initial
placement) becomes irrelevant.  The result continues bit-identically to
a run that never stopped.

Serialisation notes:

* Python floats round-trip exactly through ``json`` (shortest-repr),
  so scalar state needs no hex encoding.
* Per-PM VM lists are stored *in insertion order*: a PM's VM dict order
  is the float-summation order of its demand vectors, so reordering
  would perturb bit-exactness.
* Fault plans and scenarios reuse :mod:`repro.config`'s converters; the
  *effective* plan (which may have been passed to ``run_policy``
  explicitly rather than via the scenario) is stored separately from
  the scenario.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import numpy as np

from repro.config import (
    faultplan_from_dict,
    faultplan_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.datacenter.migration import MigrationRecord
from repro.metrics.collector import MetricsCollector
from repro.simulator.node import NodeState
from repro.util.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.baselines.base import ConsolidationPolicy
    from repro.datacenter.cluster import DataCenter
    from repro.experiments.scenarios import Scenario
    from repro.faults.controller import FaultController
    from repro.obs.profiler import NullProfiler
    from repro.obs.telemetry import Telemetry
    from repro.obs.tracer import Tracer
    from repro.simulator.engine import Simulation
    from repro.experiments.sharding import ShardConfig, ShardRuntime
    from repro.simulator.observer import InvariantObserver
    from repro.traces.base import TraceSource
    from repro.util.rng import RngStreams

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMA_VERSION",
    "SHARDED_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "RunEnv",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
]

CHECKPOINT_SCHEMA = "glap-checkpoint"
#: Version 2 stores PM/VM state as columns (one list per field) instead
#: of one dict per machine — the natural dump of the columnar store and
#: ~3x smaller.  Version 1 files are still read: their per-object dicts
#: are converted to columns at load time.
#:
#: Version 3 is written *only* by sharded runs: the PM/VM columns are
#: stored as per-shard chunks (one list per shard, concatenation
#: restores the global column exactly) and a top-level ``sharding``
#: section carries the shard map plus the cross-shard ledger state.
#: Unsharded runs keep writing version 2, so every pre-existing
#: consumer is untouched.
CHECKPOINT_SCHEMA_VERSION = 2
SHARDED_SCHEMA_VERSION = 3
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)


@dataclass
class RunEnv:
    """Everything one in-flight run consists of.

    The experiment runner assembles this for fresh runs;
    :func:`restore_checkpoint` reassembles it from a file.  The
    observability hooks (tracer/profiler) live on ``sim`` itself.
    """

    scenario: "Scenario"
    policy: "ConsolidationPolicy"
    seed: int
    dc: "DataCenter"
    sim: "Simulation"
    streams: "RngStreams"
    collector: Optional[MetricsCollector] = None
    controller: Optional["FaultController"] = None
    invariant_observer: Optional["InvariantObserver"] = None
    #: Shard runtime for a sharded run (``None`` for single-process).
    sharding: Optional["ShardRuntime"] = None
    #: Evaluation rounds completed so far (0 for a run still in warmup).
    eval_rounds_done: int = 0


# -- capture -----------------------------------------------------------------


def _chunk_columns(
    cols: Dict[str, Any], bounds: List[tuple]
) -> Dict[str, Any]:
    """Schema-v3 encoding: split each column list into per-shard chunks.

    Concatenating the chunks in shard order restores the v2 column
    exactly, so the two encodings are loss-free transforms of each
    other.
    """
    return {
        name: [values[a:b] for a, b in bounds] for name, values in cols.items()
    }


def _capture_pm_columns(dc: "DataCenter") -> Dict[str, Any]:
    """Schema-v2 PM state: one column per field, indexed by pm_id."""
    store = dc.store
    if store is not None:
        return {
            "asleep": store.pm_asleep.tolist(),
            "active_seconds": store.pm_active_seconds.tolist(),
            "saturated_seconds": store.pm_saturated_seconds.tolist(),
        }
    return {
        "asleep": [bool(pm.asleep) for pm in dc.pms],
        "active_seconds": [float(pm.active_seconds) for pm in dc.pms],
        "saturated_seconds": [float(pm.saturated_seconds) for pm in dc.pms],
    }


def _capture_vm_columns(dc: "DataCenter") -> Dict[str, Any]:
    """Schema-v2 VM state: one column per field, indexed by vm_id.

    ``ndarray.tolist()`` yields Python floats, which round-trip exactly
    through JSON — same bit-exactness guarantee as the v1 per-object
    encoding.
    """
    store = dc.store
    if store is not None:
        return {
            "cpu_requested_mips_s": store.vm_cpu_requested.tolist(),
            "cpu_degraded_mips_s": store.vm_cpu_degraded.tolist(),
            "migrations": store.vm_migrations.tolist(),
            "monitor_current": store.cur.tolist(),
            "monitor_average": store.avg.tolist(),
            "monitor_count": store.monitor_count.tolist(),
        }
    return {
        "cpu_requested_mips_s": [float(vm.cpu_requested_mips_s) for vm in dc.vms],
        "cpu_degraded_mips_s": [float(vm.cpu_degraded_mips_s) for vm in dc.vms],
        "migrations": [int(vm.migrations) for vm in dc.vms],
        "monitor_current": [[float(x) for x in vm.monitor.current] for vm in dc.vms],
        "monitor_average": [[float(x) for x in vm.monitor.average] for vm in dc.vms],
        "monitor_count": [int(vm.monitor.count) for vm in dc.vms],
    }


def _capture_state(env: RunEnv) -> Dict[str, Any]:
    dc, sim = env.dc, env.sim
    pm_cols = _capture_pm_columns(dc)
    vm_cols = _capture_vm_columns(dc)
    if env.sharding is not None:
        # v3: per-shard column chunks (see CHECKPOINT_SCHEMA_VERSION).
        pm_cols = _chunk_columns(pm_cols, list(env.sharding.map.pm_bounds))
        vm_cols = _chunk_columns(vm_cols, list(env.sharding.map.vm_bounds))
    state: Dict[str, Any] = {
        "nodes": {str(n.node_id): n.state.value for n in sim.nodes},
        "pms": pm_cols,
        "vms": vm_cols,
        # Per-PM VM id lists, in each PM's insertion order (see module
        # docstring: the order is float-summation order).
        "placement": (
            [list(row) for row in dc.store.members]
            if dc.store is not None
            else [[vm.vm_id for vm in pm.vms] for pm in dc.pms]
        ),
        "migrations": [
            {
                "round_index": m.round_index,
                "vm_id": m.vm_id,
                "src_pm": m.src_pm,
                "dst_pm": m.dst_pm,
                "duration_s": m.duration_s,
                "energy_j": m.energy_j,
                "degraded_mips_s": m.degraded_mips_s,
            }
            for m in dc.migrations
        ],
        "network": sim.network.state_dict(),
        "policy": env.policy.state_dict(),
        "telemetry": (
            sim.telemetry.state_dict() if sim.telemetry.enabled else None  # type: ignore[attr-defined]
        ),
    }
    state["faults"] = (
        env.controller.state_dict() if env.controller is not None else None
    )
    if env.collector is not None:
        col = env.collector
        state["collector"] = {
            "series": {name: list(s.values) for name, s in col.series.items()},
            "migrations_at_start": col._migrations_at_start,
            "energy_at_start": col._energy_at_start,
            "last_migrations": col._last_migrations,
            "last_energy": col._last_energy,
        }
    else:
        state["collector"] = None
    if env.invariant_observer is not None:
        obs = env.invariant_observer
        state["invariants"] = {
            "rounds_checked": obs.rounds_checked,
            "last_round_checked": obs.last_round_checked,
        }
    else:
        state["invariants"] = None
    return state


def save_checkpoint(env: RunEnv, path: Union[str, Path]) -> Dict[str, Any]:
    """Snapshot ``env`` to ``path`` (atomic write); returns the payload.

    Must be called at an evaluation-round boundary — after the round's
    metrics sample, before the next ``advance_round`` — which is the
    only point at which the state sections above are mutually
    consistent.
    """
    plan = env.controller.plan if env.controller is not None else None
    payload: Dict[str, Any] = {
        "schema": CHECKPOINT_SCHEMA,
        "schema_version": (
            SHARDED_SCHEMA_VERSION
            if env.sharding is not None
            else CHECKPOINT_SCHEMA_VERSION
        ),
        "scenario": scenario_to_dict(env.scenario),
        "policy": env.policy.name,
        "seed": env.seed,
        "faults": faultplan_to_dict(plan) if plan is not None else None,
        "check_invariants": env.invariant_observer is not None,
        "progress": {
            "eval_rounds_done": env.eval_rounds_done,
            "sim_round_index": env.sim.round_index,
            "dc_current_round": env.dc.current_round,
        },
        "rng": env.streams.state_dict(),
        "state": _capture_state(env),
    }
    if env.sharding is not None:
        payload["sharding"] = env.sharding.state_dict()
    atomic_write_text(json.dumps(payload), path)
    return payload


# -- load / validate ---------------------------------------------------------


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a checkpoint file's envelope."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    _validate(payload, where=str(path))
    return payload


def _validate(payload: Any, *, where: str) -> None:
    if not isinstance(payload, dict):
        raise ValueError(f"{where}: checkpoint must be a JSON object")
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"{where}: schema {payload.get('schema')!r} is not "
            f"{CHECKPOINT_SCHEMA!r}"
        )
    version = payload.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"{where}: schema_version {version!r} unsupported "
            f"(this build reads versions {SUPPORTED_SCHEMA_VERSIONS})"
        )
    for section in ("scenario", "progress", "rng", "state"):
        if not isinstance(payload.get(section), dict):
            raise ValueError(f"{where}: missing or malformed {section!r} section")
    for key in ("policy", "seed"):
        if key not in payload:
            raise ValueError(f"{where}: missing {key!r}")
    state = payload["state"]
    for section in ("nodes", "pms", "vms", "placement", "migrations", "network", "policy"):
        if section not in state:
            raise ValueError(f"{where}: state lacks {section!r}")
    progress = payload["progress"]
    for key in ("eval_rounds_done", "sim_round_index", "dc_current_round"):
        if key not in progress:
            raise ValueError(f"{where}: progress lacks {key!r}")
    if version == SHARDED_SCHEMA_VERSION:
        sharding = payload.get("sharding")
        if not isinstance(sharding, dict):
            raise ValueError(
                f"{where}: schema v{SHARDED_SCHEMA_VERSION} requires a "
                "'sharding' section"
            )
        for key in ("n_shards", "pm_bounds", "vm_bounds", "ledger"):
            if key not in sharding:
                raise ValueError(f"{where}: sharding section lacks {key!r}")


# -- restore -----------------------------------------------------------------


def _flatten_chunks(cols: Dict[str, Any]) -> Dict[str, Any]:
    """Undo the v3 per-shard chunking (concatenate in shard order)."""
    return {
        name: [x for chunk in chunks for x in chunk]
        for name, chunks in cols.items()
    }


def _pm_columns(state: Dict[str, Any], version: int) -> Dict[str, Any]:
    """PM state as v2 columns, converting v1's per-object dicts."""
    if version >= 3:
        return _flatten_chunks(state["pms"])
    if version >= 2:
        return state["pms"]
    cols: Dict[str, Any] = {"asleep": [], "active_seconds": [], "saturated_seconds": []}
    for i, pm_state in enumerate(state["pms"]):
        if pm_state["pm_id"] != i:
            raise ValueError(
                f"checkpoint PM order mismatch: {i} != {pm_state['pm_id']}"
            )
        cols["asleep"].append(bool(pm_state["asleep"]))
        cols["active_seconds"].append(float(pm_state["active_seconds"]))
        cols["saturated_seconds"].append(float(pm_state["saturated_seconds"]))
    return cols


def _vm_columns(state: Dict[str, Any], version: int) -> Dict[str, Any]:
    """VM state as v2 columns, converting v1's per-object dicts."""
    if version >= 3:
        return _flatten_chunks(state["vms"])
    if version >= 2:
        return state["vms"]
    cols: Dict[str, Any] = {
        "cpu_requested_mips_s": [],
        "cpu_degraded_mips_s": [],
        "migrations": [],
        "monitor_current": [],
        "monitor_average": [],
        "monitor_count": [],
    }
    for i, vm_state in enumerate(state["vms"]):
        if vm_state["vm_id"] != i:
            raise ValueError(
                f"checkpoint VM order mismatch: {i} != {vm_state['vm_id']}"
            )
        cols["cpu_requested_mips_s"].append(float(vm_state["cpu_requested_mips_s"]))
        cols["cpu_degraded_mips_s"].append(float(vm_state["cpu_degraded_mips_s"]))
        cols["migrations"].append(int(vm_state["migrations"]))
        mon = vm_state["monitor"]
        cols["monitor_current"].append([float(x) for x in mon["current"]])
        cols["monitor_average"].append([float(x) for x in mon["average"]])
        cols["monitor_count"].append(int(mon["count"]))
    return cols


def _restore_state(env: RunEnv, state: Dict[str, Any], version: int) -> None:
    dc, sim = env.dc, env.sim
    pm_cols = _pm_columns(state, version)
    vm_cols = _vm_columns(state, version)
    if len(pm_cols["asleep"]) != dc.n_pms:
        raise ValueError(
            f"checkpoint has {len(pm_cols['asleep'])} PMs, data centre has {dc.n_pms}"
        )
    if len(vm_cols["monitor_count"]) != dc.n_vms:
        raise ValueError(
            f"checkpoint has {len(vm_cols['monitor_count'])} VMs, data centre has {dc.n_vms}"
        )

    # Placement first, in the recorded insertion order (it is the
    # float-summation order of each PM's demand vector).
    store = dc.store
    if store is not None:
        store.load_placement(state["placement"])
    else:
        for vm in dc.vms:
            if vm.host_id is not None:
                dc.pm(vm.host_id).remove_vm(vm.vm_id)
        for pm, vm_ids in zip(dc.pms, state["placement"]):
            for vm_id in vm_ids:
                pm.add_vm(dc.vm(int(vm_id)))

    for node in sim.nodes:
        node.state = NodeState(state["nodes"][str(node.node_id)])

    if store is not None:
        store.pm_asleep[:] = np.asarray(pm_cols["asleep"], dtype=bool)
        store.pm_active_seconds[:] = np.asarray(
            pm_cols["active_seconds"], dtype=np.float64
        )
        store.pm_saturated_seconds[:] = np.asarray(
            pm_cols["saturated_seconds"], dtype=np.float64
        )
        store.vm_cpu_requested[:] = np.asarray(
            vm_cols["cpu_requested_mips_s"], dtype=np.float64
        )
        store.vm_cpu_degraded[:] = np.asarray(
            vm_cols["cpu_degraded_mips_s"], dtype=np.float64
        )
        store.vm_migrations[:] = np.asarray(vm_cols["migrations"], dtype=np.int64)
        store.cur[:] = np.asarray(vm_cols["monitor_current"], dtype=np.float64)
        store.avg[:] = np.asarray(vm_cols["monitor_average"], dtype=np.float64)
        store.monitor_count[:] = np.asarray(vm_cols["monitor_count"], dtype=np.int64)
    else:
        for pm, asleep, active_s, saturated_s in zip(
            dc.pms,
            pm_cols["asleep"],
            pm_cols["active_seconds"],
            pm_cols["saturated_seconds"],
        ):
            pm.asleep = bool(asleep)
            pm.active_seconds = float(active_s)
            pm.saturated_seconds = float(saturated_s)
        for i, vm in enumerate(dc.vms):
            vm.cpu_requested_mips_s = float(vm_cols["cpu_requested_mips_s"][i])
            vm.cpu_degraded_mips_s = float(vm_cols["cpu_degraded_mips_s"][i])
            vm.migrations = int(vm_cols["migrations"][i])
            # Monitor rows are views into the data centre's matrices;
            # assign in place so both sides stay bound.
            vm.monitor.current[:] = vm_cols["monitor_current"][i]
            vm.monitor.average[:] = vm_cols["monitor_average"][i]
            vm.monitor.count = int(vm_cols["monitor_count"][i])

    dc.migrations[:] = [MigrationRecord(**m) for m in state["migrations"]]
    sim.network.load_state_dict(state["network"])
    env.policy.load_state_dict(state["policy"])
    if env.controller is not None:
        if state["faults"] is None:
            raise ValueError("checkpoint lacks fault-controller state")
        env.controller.load_state_dict(state["faults"])

    col_state = state["collector"]
    if col_state is not None:
        collector = MetricsCollector(dc)
        for name, values in col_state["series"].items():
            collector.series[name].values = [float(v) for v in values]
        collector._migrations_at_start = int(col_state["migrations_at_start"])
        collector._energy_at_start = float(col_state["energy_at_start"])
        collector._last_migrations = int(col_state["last_migrations"])
        collector._last_energy = float(col_state["last_energy"])
        env.collector = collector

    inv_state = state["invariants"]
    if env.invariant_observer is not None and inv_state is not None:
        env.invariant_observer.rounds_checked = int(inv_state["rounds_checked"])
        env.invariant_observer.last_round_checked = (
            None
            if inv_state["last_round_checked"] is None
            else int(inv_state["last_round_checked"])
        )


def restore_checkpoint(
    path: Union[str, Path],
    policy: "ConsolidationPolicy",
    *,
    trace: Optional["TraceSource"] = None,
    tracer: Optional["Tracer"] = None,
    profiler: Optional["NullProfiler"] = None,
    telemetry: Optional["Telemetry"] = None,
    sharding: Optional["ShardConfig"] = None,
) -> RunEnv:
    """Rebuild a resumable :class:`RunEnv` from a checkpoint file.

    ``policy`` must be a *fresh* instance constructed exactly as for the
    original run (same name, same configuration) — policy configuration
    is the caller's provenance, the checkpoint stores only the mutable
    learned/progress state plus the policy name for validation.

    ``trace`` short-circuits workload regeneration (same contract as
    ``run_policy``); ``tracer``/``profiler``/``telemetry`` re-enable
    observability on the resumed run — none consumes randomness, so
    resuming with or without them is bit-identical.  A telemetry
    registry passed here is reloaded from the checkpoint's recorded
    series (when present), so the resumed run continues every counter
    and gauge exactly where the interrupted one stopped.

    ``sharding`` overrides the resumed run's shard configuration; a v3
    (sharded) checkpoint resumes with its recorded configuration by
    default.  Simulation results are bit-identical across shard counts,
    so resuming under a different K is valid — only the ``shard/*``
    accounting differs.
    """
    # Late import: the runner imports this package for saving, so the
    # restore path must pull runner-side modules in lazily.
    from repro.experiments.sharding import ShardConfig, ShardRuntime

    payload = load_checkpoint(path)
    if policy.name != payload["policy"]:
        raise ValueError(
            f"{path}: checkpoint is for policy {payload['policy']!r}, "
            f"got a {policy.name!r} instance"
        )
    scenario = scenario_from_dict(payload["scenario"])
    seed = int(payload["seed"])
    plan = (
        faultplan_from_dict(payload["faults"])
        if payload.get("faults") is not None
        else None
    )
    shard_section = payload.get("sharding")
    shard_config: Optional[ShardConfig] = sharding
    if shard_config is None and shard_section is not None:
        shard_config = ShardConfig(
            n_shards=int(shard_section["n_shards"]),
            workers=bool(shard_section.get("workers", True)),
            wan_factor=float(shard_section.get("wan_factor", 0.25)),
        )
    runtime: Optional[ShardRuntime] = None
    if shard_config is not None:
        runtime = ShardRuntime(
            shard_config, scenario.n_pms, scenario.n_vms, seed
        )
    try:
        return _restore_env(
            payload,
            policy,
            scenario,
            seed,
            plan,
            shard_section,
            runtime,
            trace,
            tracer,
            profiler,
            telemetry,
        )
    except Exception:
        # A failed restore must not leak shard workers or /dev/shm
        # segments (shutdown is a no-op for unsharded runs).
        if runtime is not None:
            runtime.shutdown()
        raise


def _restore_env(
    payload: Dict[str, Any],
    policy: "ConsolidationPolicy",
    scenario: "Scenario",
    seed: int,
    plan: Any,
    shard_section: Optional[Dict[str, Any]],
    runtime: Any,
    trace: Optional["TraceSource"],
    tracer: Optional["Tracer"],
    profiler: Optional["NullProfiler"],
    telemetry: Optional["Telemetry"],
) -> RunEnv:
    """The body of :func:`restore_checkpoint` (split out so the caller
    can guarantee shard-runtime cleanup on failure)."""
    from repro.experiments.runner import build_simulation
    from repro.faults.controller import FaultController
    from repro.obs.observers import OverloadTraceObserver
    from repro.obs.profiler import NULL_PROFILER
    from repro.obs.telemetry import NULL_TELEMETRY
    from repro.obs.tracer import NULL_TRACER
    from repro.simulator.observer import InvariantObserver

    # Replay the fresh-run setup path (see runner.run_policy) minus the
    # warmup loop: every step below is deterministic given (scenario,
    # seed), and whatever randomness it consumes is overwritten when the
    # RNG states load at the end.
    dc, sim, streams = build_simulation(
        scenario, seed, trace=trace, sharding=runtime
    )
    the_tracer = tracer if tracer is not None else NULL_TRACER
    prof = profiler if profiler is not None else NULL_PROFILER
    the_telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    dc.tracer = the_tracer
    sim.tracer = the_tracer
    sim.profiler = prof
    sim.network.profiler = prof
    # Same registration order as run_policy (net, dc gauges, shard,
    # faults, policy), so a resumed registry's providers line up with
    # the checkpointed series.
    sim.telemetry = the_telemetry
    if the_telemetry.enabled:
        the_telemetry.register_counters("net", sim.network.telemetry_counters)
        the_telemetry.register_gauge(
            "dc/active_pms", lambda: float(dc.active_count())
        )
        the_telemetry.register_gauge(
            "dc/overloaded_pms", lambda: float(dc.overloaded_count())
        )
        if runtime is not None:
            the_telemetry.register_counters(
                "shard", runtime.ledger.telemetry_counters
            )

    controller: Optional[FaultController] = None
    if plan is not None:
        controller = FaultController(plan, streams.get("faults")).install(dc, sim)

    observer: Optional[InvariantObserver] = None
    if payload.get("check_invariants"):
        observer = InvariantObserver(dc)
        sim.add_observer(observer)
    overload_observer: Optional[OverloadTraceObserver] = None
    if the_tracer.enabled:
        overload_observer = OverloadTraceObserver(dc, the_tracer)
        sim.add_observer(overload_observer)

    policy.attach(dc, sim, streams, scenario.warmup_rounds)

    env = RunEnv(
        scenario=scenario,
        policy=policy,
        seed=seed,
        dc=dc,
        sim=sim,
        streams=streams,
        controller=controller,
        invariant_observer=observer,
        sharding=runtime,
        eval_rounds_done=int(payload["progress"]["eval_rounds_done"]),
    )
    _restore_state(env, payload["state"], int(payload["schema_version"]))
    if runtime is not None and shard_section is not None:
        runtime.load_state_dict(shard_section)
    if overload_observer is not None:
        overload_observer.rearm()
    if the_telemetry.enabled:
        telemetry_state = payload["state"].get("telemetry")
        if telemetry_state is not None:
            the_telemetry.load_state_dict(telemetry_state)  # type: ignore[attr-defined]

    dc.current_round = int(payload["progress"]["dc_current_round"])
    sim.resume_at(int(payload["progress"]["sim_round_index"]))
    # RNG states last: this invalidates every draw consumed during the
    # rebuild above and pins all future draws to the checkpointed point.
    env.streams.load_state_dict(payload["rng"])
    return env
