"""Deterministic checkpoint/resume for simulation runs.

A checkpoint is a schema-versioned, atomically-written JSON snapshot of
*complete* simulation state at an evaluation-round boundary: RNG stream
states, overlay views, learned Q-models, placement and sleep state,
network and fault-controller progress, and the metrics series collected
so far.  Restoring it in a fresh process and running the remaining
rounds is bit-identical to never having stopped — the golden
checkpoint-equivalence suite pins this for every policy, with faults
and tracing enabled.
"""

from repro.checkpoint.snapshot import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_SCHEMA_VERSION,
    SHARDED_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    RunEnv,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMA_VERSION",
    "SHARDED_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "RunEnv",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
]
