"""Protocol interface for the cycle-driven engine.

PeerSim's cycle-driven protocols implement a single ``nextCycle`` hook
invoked once per node per round; request/reply interactions with a peer
happen synchronously inside that hook (the peer's *passive thread*).
We mirror that with :meth:`Protocol.execute_round` for the active thread
and ordinary method calls (or :class:`~repro.simulator.network.Network`
messages, when loss/latency matter) for the passive side.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.engine import Simulation
    from repro.simulator.node import Node

__all__ = ["Protocol"]


class Protocol(abc.ABC):
    """Base class for per-node round-based protocols.

    One instance is attached to one node; per-node state lives on the
    instance.  Implementations must not keep references to the whole node
    population except through ``sim`` (which models what a real
    distributed node could learn through its overlay).
    """

    @abc.abstractmethod
    def execute_round(self, node: "Node", sim: "Simulation") -> None:
        """Run this node's active thread for the current round."""

    def on_round_start(self, node: "Node", sim: "Simulation") -> None:
        """Hook invoked for every live node before active threads run.

        Default: no-op.  Used e.g. to refresh monitored utilisation from
        the trace before any gossip exchange reads it.
        """

    def on_wake(self, node: "Node", sim: "Simulation") -> None:
        """Hook invoked when a sleeping node is woken.  Default: no-op."""
