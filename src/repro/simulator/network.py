"""Message accounting and fault models for node-to-node communication.

In a cycle-driven simulation, exchanges are synchronous calls; the
:class:`Network` exists to (a) count the messages and bytes a real
deployment would send — gossip protocols advertise O(1) communication
per node per round and we verify that claim in tests — and (b) inject
message loss for robustness experiments.

The byte size of a message is an estimate supplied by the sender (e.g.
a Q-map of ``n`` entries is ``n * ENTRY_BYTES``); we do not serialise
actual payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.util.validation import check_non_negative, check_probability

__all__ = ["Message", "NetworkStats", "Network"]


@dataclass(frozen=True)
class Message:
    """A logical message between two nodes.

    Attributes
    ----------
    src, dst:
        Node ids.
    kind:
        Protocol-defined tag (e.g. ``"cyclon/shuffle"``, ``"glap/state"``).
    payload:
        Arbitrary protocol data; never inspected by the network.
    size_bytes:
        Estimated wire size, for traffic accounting.
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    size_bytes: int = 0


@dataclass
class NetworkStats:
    """Aggregate traffic counters, overall and per message kind."""

    messages_sent: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, msg: Message, dropped: bool) -> None:
        self.messages_sent += 1
        self.bytes_sent += msg.size_bytes
        self.per_kind[msg.kind] = self.per_kind.get(msg.kind, 0) + 1
        if dropped:
            self.messages_dropped += 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.per_kind.clear()


class Network:
    """Delivers messages with an optional i.i.d. loss probability.

    ``deliver`` returns ``True`` when the message goes through.  Protocols
    treat a dropped message exactly as a real gossip implementation would:
    the round's exchange silently does not happen.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.loss_probability = check_probability(loss_probability, "loss_probability")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = NetworkStats()

    def deliver(self, msg: Message) -> bool:
        """Account for ``msg``; return False if the fault model drops it."""
        dropped = (
            self.loss_probability > 0.0
            and self._rng.random() < self.loss_probability
        )
        self.stats.record(msg, dropped)
        return not dropped

    def exchange_ok(self, src: int, dst: int, kind: str, size_bytes: int = 0) -> bool:
        """Account for a request+reply pair; succeeds only if *both* survive.

        Push-pull gossip needs the request and the response delivered; a
        drop of either aborts the exchange for this round.
        """
        request = self.deliver(Message(src, dst, kind + "/req", size_bytes=size_bytes))
        reply = self.deliver(Message(dst, src, kind + "/rep", size_bytes=size_bytes))
        return request and reply

    def reset_stats(self) -> None:
        self.stats.reset()
