"""Message accounting and fault models for node-to-node communication.

In a cycle-driven simulation, exchanges are synchronous calls; the
:class:`Network` exists to (a) count the messages and bytes a real
deployment would send — gossip protocols advertise O(1) communication
per node per round and we verify that claim in tests — and (b) inject
message faults for robustness experiments.

Fault model (all reconfigurable at run time through :meth:`Network.configure`
and :meth:`Network.set_partition`, which is how the
:class:`~repro.faults.controller.FaultController` drives chaos runs):

* i.i.d. message loss, globally (``loss_probability``) or per message
  kind (``loss_per_kind``; the most specific ``/``-separated prefix of
  the kind wins, so ``"glap"`` covers ``"glap/state/req"`` unless
  ``"glap/state"`` is also configured);
* network partitions: messages crossing partition groups are dropped
  deterministically (no RNG draw), modelling a clean cut.

Determinism contract: the RNG is consulted *only* when the effective
loss probability of a message is positive, so a lossless network — and
therefore a zero-fault :class:`~repro.faults.plan.FaultPlan` — consumes
no random numbers and leaves the simulation bit-identical.

The byte size of a message is an estimate supplied by the sender (e.g.
a Q-map of ``n`` entries is ``n * ENTRY_BYTES``); we do not serialise
actual payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.obs.profiler import NULL_PROFILER, NullProfiler
from repro.util.validation import check_probability

__all__ = ["Message", "NetworkStats", "Network"]


@dataclass(frozen=True)
class Message:
    """A logical message between two nodes.

    Attributes
    ----------
    src, dst:
        Node ids.  A negative ``dst`` denotes a broadcast/advert with no
        single receiver (used for traffic accounting only); it is never
        blocked by a partition.
    kind:
        Protocol-defined tag (e.g. ``"cyclon/shuffle"``, ``"glap/state"``).
    payload:
        Arbitrary protocol data; never inspected by the network.
    size_bytes:
        Estimated wire size, for traffic accounting.
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    size_bytes: int = 0


@dataclass
class NetworkStats:
    """Aggregate traffic counters, overall and per message kind."""

    messages_sent: int = 0
    messages_dropped: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)
    dropped_per_kind: Dict[str, int] = field(default_factory=dict)
    delivered_per_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, msg: Message, dropped: bool) -> None:
        # Delivered is counted independently of dropped (not derived as
        # sent - dropped) so the conservation identity sent == delivered
        # + dropped checked by ``glap analyze`` is a real invariant — a
        # counter desynchronised across checkpoint/resume breaks it.
        self.messages_sent += 1
        self.bytes_sent += msg.size_bytes
        self.per_kind[msg.kind] = self.per_kind.get(msg.kind, 0) + 1
        if dropped:
            self.messages_dropped += 1
            self.dropped_per_kind[msg.kind] = self.dropped_per_kind.get(msg.kind, 0) + 1
        else:
            self.messages_delivered += 1
            self.delivered_per_kind[msg.kind] = (
                self.delivered_per_kind.get(msg.kind, 0) + 1
            )

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        self.per_kind.clear()
        self.dropped_per_kind.clear()
        self.delivered_per_kind.clear()


def _validate_loss_per_kind(loss_per_kind: Mapping[str, float]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for kind, prob in loss_per_kind.items():
        if not kind:
            raise ValueError("loss_per_kind keys must be non-empty strings")
        out[str(kind)] = check_probability(float(prob), f"loss_per_kind[{kind!r}]")
    return out


class Network:
    """Delivers messages subject to loss and partition fault models.

    ``deliver`` returns ``True`` when the message goes through.  Protocols
    treat a dropped message exactly as a real gossip implementation would:
    the round's exchange silently does not happen.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        loss_per_kind: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.loss_probability = check_probability(loss_probability, "loss_probability")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.loss_per_kind: Dict[str, float] = (
            _validate_loss_per_kind(loss_per_kind) if loss_per_kind else {}
        )
        self._partition: Optional[Dict[int, int]] = None
        self.stats = NetworkStats()
        #: Phase profiler (no-op by default); when enabled, push-pull
        #: exchange delivery is accumulated under ``network_delivery``.
        self.profiler: NullProfiler = NULL_PROFILER
        #: Optional message observer, called for every delivery attempt
        #: as ``observer(msg, dropped)`` *after* the drop decision.  It
        #: must be pure accounting: it may not mutate the message, draw
        #: randomness, or influence delivery (the cross-shard ledger in
        #: :mod:`repro.experiments.sharding` hangs off this hook).
        self.observer: Optional[Callable[[Message, bool], None]] = None

    # -- fault-model configuration (the public chaos API) -------------------

    def configure(
        self,
        loss_probability: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        loss_per_kind: Optional[Mapping[str, float]] = None,
    ) -> "Network":
        """Reconfigure the loss model in place; ``None`` leaves a field as is.

        This is the supported way for experiments and tests to inject
        message loss mid-run (rather than poking ``_rng``): pass the
        dedicated ``"faults"`` stream as ``rng`` so chaos runs replay
        from the root seed alone.  Returns ``self`` for chaining.
        """
        if loss_probability is not None:
            self.loss_probability = check_probability(
                loss_probability, "loss_probability"
            )
        if rng is not None:
            self._rng = rng
        if loss_per_kind is not None:
            self.loss_per_kind = _validate_loss_per_kind(loss_per_kind)
        return self

    def set_partition(self, groups: Sequence[Iterable[int]]) -> None:
        """Split the network: messages between different groups drop.

        ``groups`` is a sequence of disjoint node-id collections.  Nodes
        absent from every group form one implicit extra group (so a
        single explicit group already isolates it from the rest).  An
        empty sequence clears the partition.
        """
        membership: Dict[int, int] = {}
        for gidx, group in enumerate(groups):
            for nid in group:
                nid = int(nid)
                if nid in membership:
                    raise ValueError(f"node {nid} appears in more than one group")
                membership[nid] = gidx
        self._partition = membership if membership else None

    def clear_partition(self) -> None:
        """Heal any active partition."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    # -- delivery ------------------------------------------------------------

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if self._partition is None or dst < 0:
            return False
        return self._partition.get(src, -1) != self._partition.get(dst, -1)

    def _loss_for(self, kind: str) -> float:
        """Effective loss probability: most specific kind prefix wins."""
        if self.loss_per_kind:
            probe = kind
            while probe:
                if probe in self.loss_per_kind:
                    return self.loss_per_kind[probe]
                cut = probe.rfind("/")
                probe = probe[:cut] if cut > 0 else ""
        return self.loss_probability

    def deliver(self, msg: Message) -> bool:
        """Account for ``msg``; return False if the fault model drops it."""
        if self._crosses_partition(msg.src, msg.dst):
            dropped = True
        else:
            p = self._loss_for(msg.kind)
            # Only draw when loss can occur — a lossless network must not
            # consume randomness (the zero-fault identity contract).
            dropped = p > 0.0 and self._rng.random() < p
        self.stats.record(msg, dropped)
        if self.observer is not None:
            self.observer(msg, dropped)
        return not dropped

    def exchange_ok(
        self,
        src: int,
        dst: int,
        kind: str,
        size_bytes: int = 0,
        *,
        req_bytes: Optional[int] = None,
        rep_bytes: Optional[int] = None,
    ) -> bool:
        """Account for a request+reply pair; succeeds only if *both* survive.

        Push-pull gossip needs the request and the response delivered; a
        drop of either aborts the exchange for this round.

        ``req_bytes``/``rep_bytes`` size the two directions independently
        (a push-pull exchange ships *my* payload on the request and the
        peer's on the reply); either defaults to the symmetric
        ``size_bytes`` when not given.
        """
        req_size = size_bytes if req_bytes is None else req_bytes
        rep_size = size_bytes if rep_bytes is None else rep_bytes
        if self.profiler.enabled:
            with self.profiler.phase("network_delivery"):
                request = self.deliver(
                    Message(src, dst, kind + "/req", size_bytes=req_size)
                )
                reply = self.deliver(
                    Message(dst, src, kind + "/rep", size_bytes=rep_size)
                )
        else:
            request = self.deliver(
                Message(src, dst, kind + "/req", size_bytes=req_size)
            )
            reply = self.deliver(
                Message(dst, src, kind + "/rep", size_bytes=rep_size)
            )
        return request and reply

    def reset_stats(self) -> None:
        self.stats.reset()

    # -- telemetry -----------------------------------------------------------

    def telemetry_counters(self) -> Dict[str, float]:
        """Cumulative traffic counters for the telemetry registry.

        Flat keys: ``sent``/``delivered``/``dropped``/``bytes`` plus the
        per-kind ``sent/<kind>`` (and delivered/dropped) variants, so a
        telemetry section can verify message conservation per kind.
        """
        stats = self.stats
        counters: Dict[str, float] = {
            "sent": float(stats.messages_sent),
            "delivered": float(stats.messages_delivered),
            "dropped": float(stats.messages_dropped),
            "bytes": float(stats.bytes_sent),
        }
        for kind, n in stats.per_kind.items():
            counters[f"sent/{kind}"] = float(n)
        for kind, n in stats.delivered_per_kind.items():
            counters[f"delivered/{kind}"] = float(n)
        for kind, n in stats.dropped_per_kind.items():
            counters[f"dropped/{kind}"] = float(n)
        return counters

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe fault-model configuration + traffic counters.

        The RNG is *not* captured here: when a fault controller is
        installed the network shares the ``"faults"`` stream, whose
        state :class:`~repro.util.rng.RngStreams` checkpoints; without
        one the loss probability is zero and the generator is never
        consulted.
        """
        return {
            "loss_probability": self.loss_probability,
            "loss_per_kind": dict(self.loss_per_kind),
            "partition": (
                {str(nid): gidx for nid, gidx in self._partition.items()}
                if self._partition is not None
                else None
            ),
            "stats": {
                "messages_sent": self.stats.messages_sent,
                "messages_dropped": self.stats.messages_dropped,
                "messages_delivered": self.stats.messages_delivered,
                "bytes_sent": self.stats.bytes_sent,
                "per_kind": dict(self.stats.per_kind),
                "dropped_per_kind": dict(self.stats.dropped_per_kind),
                "delivered_per_kind": dict(self.stats.delivered_per_kind),
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore configuration/counters captured by :meth:`state_dict`.

        Needed on resume because the fault controller skips
        reconfiguration while the active phase is unchanged — the
        network must already be in the phase's configured state.
        """
        self.loss_probability = check_probability(
            float(state["loss_probability"]), "loss_probability"
        )
        self.loss_per_kind = _validate_loss_per_kind(state["loss_per_kind"])
        partition = state["partition"]
        self._partition = (
            {int(nid): int(gidx) for nid, gidx in partition.items()}
            if partition is not None
            else None
        )
        stats = state["stats"]
        self.stats.messages_sent = int(stats["messages_sent"])
        self.stats.messages_dropped = int(stats["messages_dropped"])
        self.stats.bytes_sent = int(stats["bytes_sent"])
        self.stats.per_kind = {str(k): int(v) for k, v in stats["per_kind"].items()}
        self.stats.dropped_per_kind = {
            str(k): int(v) for k, v in stats["dropped_per_kind"].items()
        }
        # Checkpoints written before delivered counters existed carry
        # neither key; reconstruct from the conservation identity.
        self.stats.messages_delivered = int(
            stats.get(
                "messages_delivered",
                self.stats.messages_sent - self.stats.messages_dropped,
            )
        )
        delivered = stats.get("delivered_per_kind")
        if delivered is not None:
            self.stats.delivered_per_kind = {
                str(k): int(v) for k, v in delivered.items()
            }
        else:
            self.stats.delivered_per_kind = {
                kind: n - self.stats.dropped_per_kind.get(kind, 0)
                for kind, n in self.stats.per_kind.items()
                if n - self.stats.dropped_per_kind.get(kind, 0) > 0
            }
