"""Round-based peer-to-peer simulation engine (PeerSim equivalent).

The paper evaluates GLAP on PeerSim's *cycle-driven* mode: time advances
in discrete rounds; in each round every live node's active thread runs
once (in random order), contacting peers whose passive threads reply
within the same round.  This package reproduces those semantics:

* :class:`~repro.simulator.node.Node` — a participant with a lifecycle
  (``UP`` / ``SLEEPING`` / ``FAILED``) and a stack of named protocols.
* :class:`~repro.simulator.protocol.Protocol` — active/passive behaviour.
* :class:`~repro.simulator.network.Network` — message accounting plus
  optional loss/latency models for failure-injection tests.
* :class:`~repro.simulator.engine.Simulation` — the round loop with
  observer hooks sampled at the end of every round.
"""

from repro.simulator.node import Node, NodeState
from repro.simulator.protocol import Protocol
from repro.simulator.network import Message, Network, NetworkStats
from repro.simulator.engine import Simulation
from repro.simulator.observer import Observer, CallbackObserver

__all__ = [
    "Node",
    "NodeState",
    "Protocol",
    "Message",
    "Network",
    "NetworkStats",
    "Simulation",
    "Observer",
    "CallbackObserver",
]
