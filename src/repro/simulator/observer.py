"""Observers sample simulation state at the end of every round.

The paper's evaluation metrics "are sampled at the end of each round";
observers are the hook for that.  They must be read-only: mutating the
simulation from an observer would entangle measurement with behaviour.

:class:`InvariantObserver` is the always-on safety net for chaos runs:
it re-checks the data centre's conservation laws after every round and
raises :class:`InvariantViolation` the moment a policy (or a fault
schedule) corrupts state — so a broken run fails at the offending round,
not hundreds of rounds later in some aggregate metric.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.cluster import DataCenter
    from repro.simulator.engine import Simulation

__all__ = [
    "Observer",
    "CallbackObserver",
    "InvariantViolation",
    "check_datacenter_invariants",
    "InvariantObserver",
]


class Observer(abc.ABC):
    """End-of-round sampling hook."""

    @abc.abstractmethod
    def observe(self, round_index: int, sim: "Simulation") -> None:
        """Record whatever this observer measures for ``round_index``."""

    def on_simulation_end(self, sim: "Simulation") -> None:
        """Optional hook after the last round.  Default: no-op."""


class CallbackObserver(Observer):
    """Adapter wrapping a plain callable ``f(round_index, sim)``."""

    def __init__(self, fn: Callable[[int, "Simulation"], None]) -> None:
        if not callable(fn):
            raise TypeError("fn must be callable")
        self._fn = fn

    def observe(self, round_index: int, sim: "Simulation") -> None:
        self._fn(round_index, sim)


class InvariantViolation(AssertionError):
    """A data-centre conservation law was broken.

    Subclasses :class:`AssertionError` so pytest renders it as a test
    failure and existing assertion-based helpers stay interchangeable.
    """


def _violation(round_index: Optional[int], message: str) -> InvariantViolation:
    where = "" if round_index is None else f"round {round_index}: "
    return InvariantViolation(where + message)


def _check_node_pm_coherence(
    sim: "Simulation", round_index: Optional[int]
) -> None:
    for node in sim.nodes:
        pm = node.payload
        if pm is None or not hasattr(pm, "asleep"):
            continue  # engine-only populations carry no PM payloads
        if node.is_sleeping and not pm.asleep:
            raise _violation(
                round_index,
                f"node {node.node_id} is sleeping but PM is marked awake",
            )
        if pm.asleep and node.is_up:
            raise _violation(
                round_index,
                f"PM {pm.pm_id} is asleep but node {node.node_id} is UP",
            )


def _check_object_state(
    dc: "DataCenter",
    sim: Optional["Simulation"],
    round_index: Optional[int],
    atol: float,
) -> None:
    """Per-object reference walk of every structural/numeric law."""
    hosted = sorted(vm.vm_id for pm in dc.pms for vm in pm.vms)
    if hosted != list(range(dc.n_vms)):
        seen = set()
        dupes = sorted({v for v in hosted if v in seen or seen.add(v)})
        missing = sorted(set(range(dc.n_vms)) - set(hosted))
        raise _violation(
            round_index,
            f"VM conservation broken: duplicated={dupes} missing={missing}",
        )

    for pm in dc.pms:
        if pm.asleep and not pm.is_empty:
            raise _violation(
                round_index,
                f"sleeping PM {pm.pm_id} still hosts VMs "
                f"{sorted(vm.vm_id for vm in pm.vms)}",
            )
        expected = np.zeros_like(pm.demand_vector())
        for vm in pm.vms:
            if vm.host_id != pm.pm_id:
                raise _violation(
                    round_index,
                    f"VM {vm.vm_id} on PM {pm.pm_id} claims host {vm.host_id}",
                )
            expected += vm.current_demand_abs()
        actual = pm.demand_vector()
        if not np.allclose(actual, expected, atol=atol):
            raise _violation(
                round_index,
                f"PM {pm.pm_id} utilisation view {actual} != VM sum {expected}",
            )

    if sim is not None:
        _check_node_pm_coherence(sim, round_index)


def _check_columnar_state(
    dc: "DataCenter",
    sim: Optional["Simulation"],
    round_index: Optional[int],
    atol: float,
) -> None:
    """Whole-array equivalent of :func:`_check_object_state`.

    The membership lists and the ``host`` column are independent
    structural records of the same placement; the check verifies them
    against each other (conservation, back-references, sleeping-empty)
    and then cross-checks the two aggregation routes numerically, all
    without touching a per-PM Python loop.
    """
    store = dc.store
    assert store is not None
    n_pms, n_vms = store.n_pms, store.n_vms
    indptr, indices = store.csr()
    counts = np.diff(indptr)

    seen = np.bincount(indices, minlength=n_vms) if indices.size else np.zeros(
        n_vms, dtype=np.int64
    )
    if indices.size != n_vms or np.any(seen != 1):
        dupes = sorted(np.flatnonzero(seen > 1).tolist())
        missing = sorted(np.flatnonzero(seen == 0).tolist())
        raise _violation(
            round_index,
            f"VM conservation broken: duplicated={dupes} missing={missing}",
        )

    owner = np.repeat(np.arange(n_pms, dtype=np.int64), counts)
    mismatch = store.host[indices] != owner
    if np.any(mismatch):
        k = int(np.flatnonzero(mismatch)[0])
        raise _violation(
            round_index,
            f"VM {int(indices[k])} on PM {int(owner[k])} claims host "
            f"{int(store.host[indices[k]])}",
        )

    asleep_hosting = store.pm_asleep & (counts > 0)
    if np.any(asleep_hosting):
        p = int(np.flatnonzero(asleep_hosting)[0])
        raise _violation(
            round_index,
            f"sleeping PM {p} still hosts VMs {sorted(store.members[p])}",
        )

    # Numeric coherence: aggregate by host column vs by membership lists.
    abs_demand = store.cur * store.vm_cap
    n_resources = abs_demand.shape[1]
    for r in range(n_resources):
        actual = np.bincount(
            store.host, weights=abs_demand[:, r], minlength=n_pms
        )
        expected = np.bincount(
            owner, weights=abs_demand[indices, r], minlength=n_pms
        )
        if not np.allclose(actual, expected, atol=atol):
            p = int(np.flatnonzero(~np.isclose(actual, expected, atol=atol))[0])
            raise _violation(
                round_index,
                f"PM {p} utilisation view {actual[p]} != VM sum {expected[p]} "
                f"(resource {r})",
            )

    if sim is not None:
        _check_node_pm_coherence(sim, round_index)


def _check_migration_records(
    migrations,
    round_index: Optional[int],
    *,
    start: int = 0,
    prev_round: Optional[int] = None,
) -> Optional[int]:
    """Check ``migrations[start:]``; returns the last round stamp seen.

    The ``start``/``prev_round`` cursor lets :class:`InvariantObserver`
    check only the records appended since its previous observation —
    without it the per-round cost grows with the whole migration log.
    """
    last = prev_round
    for m in migrations[start:]:
        if last is not None and m.round_index < last:
            raise _violation(round_index, "migration log round stamps out of order")
        last = m.round_index
        if m.src_pm == m.dst_pm:
            raise _violation(
                round_index, f"self-migration of VM {m.vm_id} on PM {m.src_pm}"
            )
        if not m.duration_s > 0:
            raise _violation(
                round_index,
                f"migration of VM {m.vm_id} has non-positive duration {m.duration_s}",
            )
    return last


def check_datacenter_invariants(
    dc: "DataCenter",
    sim: Optional["Simulation"] = None,
    round_index: Optional[int] = None,
    *,
    atol: float = 1e-9,
) -> None:
    """Check every conservation law; raise :class:`InvariantViolation` on
    the first breach.

    The laws (promoted from the integration test-suite so any run — not
    just a test — can assert them):

    * **VM conservation** — every VM is hosted by exactly one PM; none is
      lost or duplicated, and host back-references agree.
    * **Sleeping PMs are empty** — a switched-off PM hosts no VMs.
    * **Utilisation-view consistency** — a PM's demand vector equals the
      sum of its VMs' absolute demands (the gossip state protocols read
      these views; a drifted cache would mis-place VMs silently).
    * **Migration-record sanity** — round stamps are monotone, no
      self-migrations, durations positive.
    * **Node/PM state coherence** (when ``sim`` is given) — a sleeping
      node's PM is marked asleep and an asleep PM's node is not UP;
      failed nodes are exempt (a crash leaves the PM flag wherever the
      crash found it).

    On the columnar backend the structural and numeric laws are checked
    as whole-array operations; the object backend walks the objects.
    """
    if getattr(dc, "store", None) is not None:
        _check_columnar_state(dc, sim, round_index, atol)
    else:
        _check_object_state(dc, sim, round_index, atol)
    _check_migration_records(dc.migrations, round_index)


class InvariantObserver(Observer):
    """Checks :func:`check_datacenter_invariants` at the end of every round.

    Attach via ``sim.add_observer(InvariantObserver(dc))`` (the runner
    does this when a scenario sets ``check_invariants=True``).  Strictly
    read-only; the only state it keeps is bookkeeping about the checks
    themselves.
    """

    def __init__(self, dc: "DataCenter", *, atol: float = 1e-9) -> None:
        self.dc = dc
        self.atol = atol
        self.rounds_checked = 0
        self.last_round_checked: Optional[int] = None
        # Migration-log cursor: records before this index were already
        # checked on a previous round, so each observation only scans the
        # new tail (the full log is re-verified by any standalone
        # check_datacenter_invariants call).
        self._migrations_checked = 0
        self._last_migration_round: Optional[int] = None
        self._first_checked_record: Optional[object] = None

    def observe(self, round_index: int, sim: "Simulation") -> None:
        dc = self.dc
        if getattr(dc, "store", None) is not None:
            _check_columnar_state(dc, sim, round_index, self.atol)
        else:
            _check_object_state(dc, sim, round_index, self.atol)
        n = len(dc.migrations)
        if self._migrations_checked > 0 and (
            n == 0 or dc.migrations[0] is not self._first_checked_record
        ):
            # The log was cleared (dc.reset_accounting at the warmup/eval
            # boundary, or a checkpoint restore): restart the cursor.
            self._migrations_checked = 0
            self._last_migration_round = None
            self._first_checked_record = None
        self._last_migration_round = _check_migration_records(
            dc.migrations,
            round_index,
            start=self._migrations_checked,
            prev_round=self._last_migration_round,
        )
        self._migrations_checked = n
        if n > 0:
            self._first_checked_record = dc.migrations[0]
        self.rounds_checked += 1
        self.last_round_checked = round_index
