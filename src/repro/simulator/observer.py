"""Observers sample simulation state at the end of every round.

The paper's evaluation metrics "are sampled at the end of each round";
observers are the hook for that.  They must be read-only: mutating the
simulation from an observer would entangle measurement with behaviour.

:class:`InvariantObserver` is the always-on safety net for chaos runs:
it re-checks the data centre's conservation laws after every round and
raises :class:`InvariantViolation` the moment a policy (or a fault
schedule) corrupts state — so a broken run fails at the offending round,
not hundreds of rounds later in some aggregate metric.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.cluster import DataCenter
    from repro.simulator.engine import Simulation

__all__ = [
    "Observer",
    "CallbackObserver",
    "InvariantViolation",
    "check_datacenter_invariants",
    "InvariantObserver",
]


class Observer(abc.ABC):
    """End-of-round sampling hook."""

    @abc.abstractmethod
    def observe(self, round_index: int, sim: "Simulation") -> None:
        """Record whatever this observer measures for ``round_index``."""

    def on_simulation_end(self, sim: "Simulation") -> None:
        """Optional hook after the last round.  Default: no-op."""


class CallbackObserver(Observer):
    """Adapter wrapping a plain callable ``f(round_index, sim)``."""

    def __init__(self, fn: Callable[[int, "Simulation"], None]) -> None:
        if not callable(fn):
            raise TypeError("fn must be callable")
        self._fn = fn

    def observe(self, round_index: int, sim: "Simulation") -> None:
        self._fn(round_index, sim)


class InvariantViolation(AssertionError):
    """A data-centre conservation law was broken.

    Subclasses :class:`AssertionError` so pytest renders it as a test
    failure and existing assertion-based helpers stay interchangeable.
    """


def _violation(round_index: Optional[int], message: str) -> InvariantViolation:
    where = "" if round_index is None else f"round {round_index}: "
    return InvariantViolation(where + message)


def check_datacenter_invariants(
    dc: "DataCenter",
    sim: Optional["Simulation"] = None,
    round_index: Optional[int] = None,
    *,
    atol: float = 1e-9,
) -> None:
    """Check every conservation law; raise :class:`InvariantViolation` on
    the first breach.

    The laws (promoted from the integration test-suite so any run — not
    just a test — can assert them):

    * **VM conservation** — every VM is hosted by exactly one PM; none is
      lost or duplicated, and host back-references agree.
    * **Sleeping PMs are empty** — a switched-off PM hosts no VMs.
    * **Utilisation-view consistency** — a PM's demand vector equals the
      sum of its VMs' absolute demands (the gossip state protocols read
      these views; a drifted cache would mis-place VMs silently).
    * **Migration-record sanity** — round stamps are monotone, no
      self-migrations, durations positive.
    * **Node/PM state coherence** (when ``sim`` is given) — a sleeping
      node's PM is marked asleep and an asleep PM's node is not UP;
      failed nodes are exempt (a crash leaves the PM flag wherever the
      crash found it).
    """
    hosted = sorted(vm.vm_id for pm in dc.pms for vm in pm.vms)
    if hosted != list(range(dc.n_vms)):
        seen = set()
        dupes = sorted({v for v in hosted if v in seen or seen.add(v)})
        missing = sorted(set(range(dc.n_vms)) - set(hosted))
        raise _violation(
            round_index,
            f"VM conservation broken: duplicated={dupes} missing={missing}",
        )

    for pm in dc.pms:
        if pm.asleep and not pm.is_empty:
            raise _violation(
                round_index,
                f"sleeping PM {pm.pm_id} still hosts VMs "
                f"{sorted(vm.vm_id for vm in pm.vms)}",
            )
        expected = np.zeros_like(pm.demand_vector())
        for vm in pm.vms:
            if vm.host_id != pm.pm_id:
                raise _violation(
                    round_index,
                    f"VM {vm.vm_id} on PM {pm.pm_id} claims host {vm.host_id}",
                )
            expected += vm.current_demand_abs()
        actual = pm.demand_vector()
        if not np.allclose(actual, expected, atol=atol):
            raise _violation(
                round_index,
                f"PM {pm.pm_id} utilisation view {actual} != VM sum {expected}",
            )

    rounds = [m.round_index for m in dc.migrations]
    if rounds != sorted(rounds):
        raise _violation(round_index, "migration log round stamps out of order")
    for m in dc.migrations:
        if m.src_pm == m.dst_pm:
            raise _violation(
                round_index, f"self-migration of VM {m.vm_id} on PM {m.src_pm}"
            )
        if not m.duration_s > 0:
            raise _violation(
                round_index,
                f"migration of VM {m.vm_id} has non-positive duration {m.duration_s}",
            )

    if sim is not None:
        for node in sim.nodes:
            pm = node.payload
            if pm is None or not hasattr(pm, "asleep"):
                continue  # engine-only populations carry no PM payloads
            if node.is_sleeping and not pm.asleep:
                raise _violation(
                    round_index,
                    f"node {node.node_id} is sleeping but PM is marked awake",
                )
            if pm.asleep and node.is_up:
                raise _violation(
                    round_index,
                    f"PM {pm.pm_id} is asleep but node {node.node_id} is UP",
                )


class InvariantObserver(Observer):
    """Checks :func:`check_datacenter_invariants` at the end of every round.

    Attach via ``sim.add_observer(InvariantObserver(dc))`` (the runner
    does this when a scenario sets ``check_invariants=True``).  Strictly
    read-only; the only state it keeps is bookkeeping about the checks
    themselves.
    """

    def __init__(self, dc: "DataCenter", *, atol: float = 1e-9) -> None:
        self.dc = dc
        self.atol = atol
        self.rounds_checked = 0
        self.last_round_checked: Optional[int] = None

    def observe(self, round_index: int, sim: "Simulation") -> None:
        check_datacenter_invariants(
            self.dc, sim, round_index=round_index, atol=self.atol
        )
        self.rounds_checked += 1
        self.last_round_checked = round_index
