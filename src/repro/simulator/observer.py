"""Observers sample simulation state at the end of every round.

The paper's evaluation metrics "are sampled at the end of each round";
observers are the hook for that.  They must be read-only: mutating the
simulation from an observer would entangle measurement with behaviour.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.engine import Simulation

__all__ = ["Observer", "CallbackObserver"]


class Observer(abc.ABC):
    """End-of-round sampling hook."""

    @abc.abstractmethod
    def observe(self, round_index: int, sim: "Simulation") -> None:
        """Record whatever this observer measures for ``round_index``."""

    def on_simulation_end(self, sim: "Simulation") -> None:
        """Optional hook after the last round.  Default: no-op."""


class CallbackObserver(Observer):
    """Adapter wrapping a plain callable ``f(round_index, sim)``."""

    def __init__(self, fn: Callable[[int, "Simulation"], None]) -> None:
        if not callable(fn):
            raise TypeError("fn must be callable")
        self._fn = fn

    def observe(self, round_index: int, sim: "Simulation") -> None:
        self._fn(round_index, sim)
