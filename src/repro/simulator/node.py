"""Simulation nodes.

A :class:`Node` is a generic participant in the round-based simulation.
The data-centre layer attaches a :class:`~repro.datacenter.pm.PhysicalMachine`
to each node via ``node.payload``; protocol instances (Cyclon, learning,
consolidation, ...) are registered per node under string keys, mirroring
PeerSim's "protocol stack" design where each node carries its own
instance of every configured protocol.
"""

from __future__ import annotations

import enum
from typing import Any, Dict

__all__ = ["NodeState", "Node"]


class NodeState(enum.Enum):
    """Lifecycle of a node.

    ``UP``        — participates in gossip rounds.
    ``SLEEPING``  — switched off to save energy (a consolidated PM);
                    it no longer initiates or answers gossip, but can be
                    woken by the simulation (e.g. on data-centre pressure).
    ``FAILED``    — crashed; used by failure-injection tests.  Unlike a
                    sleeping node it cannot be woken.
    """

    UP = "up"
    SLEEPING = "sleeping"
    FAILED = "failed"


class Node:
    """A network participant with a protocol stack and an optional payload."""

    __slots__ = ("node_id", "state", "payload", "_protocols")

    def __init__(self, node_id: int, payload: Any = None) -> None:
        if node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {node_id}")
        self.node_id = int(node_id)
        self.state = NodeState.UP
        self.payload = payload
        self._protocols: Dict[str, Any] = {}

    # -- protocol stack ---------------------------------------------------

    def register(self, name: str, protocol: Any) -> None:
        """Attach a protocol instance under ``name``; names are unique."""
        if name in self._protocols:
            raise ValueError(f"protocol {name!r} already registered on node {self.node_id}")
        self._protocols[name] = protocol

    def protocol(self, name: str) -> Any:
        """Look up a registered protocol; raises ``KeyError`` if missing."""
        try:
            return self._protocols[name]
        except KeyError:
            raise KeyError(
                f"node {self.node_id} has no protocol {name!r}; "
                f"registered: {sorted(self._protocols)}"
            ) from None

    def has_protocol(self, name: str) -> bool:
        return name in self._protocols

    @property
    def protocols(self) -> Dict[str, Any]:
        """Read-only view of the protocol stack (do not mutate)."""
        return self._protocols

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.state is NodeState.UP

    @property
    def is_sleeping(self) -> bool:
        return self.state is NodeState.SLEEPING

    @property
    def is_failed(self) -> bool:
        return self.state is NodeState.FAILED

    def sleep(self) -> None:
        """Switch the node off (energy saving).  Failed nodes stay failed."""
        if self.state is NodeState.FAILED:
            raise RuntimeError(f"cannot sleep failed node {self.node_id}")
        self.state = NodeState.SLEEPING

    def wake(self) -> None:
        """Bring a sleeping node back up."""
        if self.state is NodeState.FAILED:
            raise RuntimeError(f"cannot wake failed node {self.node_id}")
        self.state = NodeState.UP

    def fail(self) -> None:
        """Crash the node (failure injection).  ``wake``/``sleep`` refuse
        failed nodes; only an explicit :meth:`recover` restarts one."""
        self.state = NodeState.FAILED

    def recover(self) -> None:
        """Restart a crashed node (crash-recovery churn).

        Deliberately distinct from :meth:`wake` so ordinary policy code
        can never resurrect a crashed PM by accident — only the fault
        machinery models repairs.
        """
        if self.state is not NodeState.FAILED:
            raise RuntimeError(
                f"cannot recover node {self.node_id}: not failed ({self.state.value})"
            )
        self.state = NodeState.UP

    def __repr__(self) -> str:
        return f"Node(id={self.node_id}, state={self.state.value})"

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.node_id == self.node_id
