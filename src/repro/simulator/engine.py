"""The cycle-driven simulation engine.

Semantics (matching PeerSim's ``CDSimulator``):

* Time advances in integer rounds.
* At the start of a round, each live node's protocols get their
  ``on_round_start`` hook (trace refresh, monitoring, ...).
* Then every *live* node's active thread runs exactly once per protocol,
  in a fresh random permutation each round — the permutation models the
  unsynchronised wall-clock offsets of real gossip nodes.
* Protocols execute in registration order within a node (Cyclon first,
  then learning, then consolidation — matching the component stack of
  the paper's Figure 2).
* At the end of the round every observer samples the state.

Nodes that fall asleep mid-round are skipped for the rest of the round
(their ``is_up`` is re-checked immediately before execution), exactly as
a switched-off PM stops gossiping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.obs.profiler import NULL_PROFILER, NullProfiler
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.network import Network
from repro.simulator.node import Node
from repro.simulator.observer import Observer

__all__ = ["Simulation"]


class Simulation:
    """Round loop over a fixed node population.

    Parameters
    ----------
    nodes:
        The full node population (live and sleeping).
    rng:
        Generator driving engine-level randomness (execution order).
        Protocol-level randomness should come from separate streams.
    network:
        Message accounting / fault injection; a default lossless network
        is created when omitted.
    protocol_order:
        Explicit execution order of protocol names.  Protocols present on
        a node but absent from this list do not get an active thread
        (useful for passive-only components).  When ``None``, each node's
        registration order is used.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        rng: np.random.Generator,
        network: Optional[Network] = None,
        protocol_order: Optional[Sequence[str]] = None,
    ) -> None:
        if len(nodes) == 0:
            raise ValueError("simulation needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in population")
        self._nodes: List[Node] = list(nodes)
        self._by_id: Dict[int, Node] = {n.node_id: n for n in nodes}
        self._rng = rng
        self.network = network if network is not None else Network()
        self._protocol_order = list(protocol_order) if protocol_order else None
        self._observers: List[Observer] = []
        self.round_index: int = 0
        self._finished = False
        #: Observability hooks — no-op by default, so an uninstrumented
        #: run pays one attribute check per guarded site and consumes no
        #: randomness either way (the golden suite pins this).
        self.tracer: Tracer = NULL_TRACER
        self.profiler: NullProfiler = NULL_PROFILER
        self.telemetry: Telemetry = NULL_TELEMETRY

    # -- population access --------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        """All nodes, including sleeping/failed ones."""
        return self._nodes

    def node(self, node_id: int) -> Node:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise KeyError(f"no node with id {node_id}") from None

    def live_nodes(self) -> List[Node]:
        return [n for n in self._nodes if n.is_up]

    def live_count(self) -> int:
        return sum(1 for n in self._nodes if n.is_up)

    # -- observers ------------------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    # -- execution --------------------------------------------------------------

    def _node_protocol_names(self, node: Node) -> Iterable[str]:
        if self._protocol_order is not None:
            return [p for p in self._protocol_order if node.has_protocol(p)]
        return list(node.protocols.keys())

    def run_round(self) -> None:
        """Execute one full round."""
        prof = self.profiler
        if prof.enabled:
            with prof.phase("round_hooks"):
                self._run_round_hooks()
            with prof.phase("gossip"):
                self._run_active_threads()
            with prof.phase("observers"):
                self._run_observers()
        else:
            self._run_round_hooks()
            self._run_active_threads()
            self._run_observers()
        self.round_index += 1

    def _run_round_hooks(self) -> None:
        # Phase 1: per-round refresh hooks for live nodes.
        for node in self._nodes:
            if not node.is_up:
                continue
            for name in self._node_protocol_names(node):
                node.protocol(name).on_round_start(node, self)

    def _run_active_threads(self) -> None:
        # Phase 2: active threads in random order.  The snapshot of live
        # nodes is taken once; nodes that sleep mid-round are skipped when
        # their turn comes (re-checked below), and nodes woken mid-round
        # only start participating next round — both match how a real
        # gossip round would unfold.
        live = self.live_nodes()
        order = self._rng.permutation(len(live))
        for idx in order:
            node = live[idx]
            if not node.is_up:
                continue
            for name in self._node_protocol_names(node):
                if not node.is_up:
                    break
                node.protocol(name).execute_round(node, self)

    def _run_observers(self) -> None:
        # Phase 3: end-of-round sampling.
        for observer in self._observers:
            observer.observe(self.round_index, self)

    def run(self, rounds: int, *, finish: bool = True) -> None:
        """Execute ``rounds`` additional rounds.

        ``finish=True`` (the default) marks the logical run as complete
        afterwards, firing each observer's ``on_simulation_end`` exactly
        once per :class:`Simulation` (see :meth:`finish`).  Callers that
        run in chunks — warmup then evaluation, or round-by-round via
        :meth:`run_round` — pass ``finish=False`` for the intermediate
        chunks and call :meth:`finish` when the whole run is over.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        for _ in range(rounds):
            self.run_round()
        if finish and rounds > 0:
            self.finish()

    def finish(self) -> None:
        """Declare the logical run complete.

        Fires every observer's ``on_simulation_end`` hook; idempotent, so
        however the run was driven (one ``run`` call, several chunks, or
        ``run_round`` in a loop) observers see exactly one end-of-
        simulation callback.
        """
        if self._finished:
            return
        self._finished = True
        for observer in self._observers:
            observer.on_simulation_end(self)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    def resume_at(self, round_index: int) -> None:
        """Reposition the round counter when restoring from a checkpoint.

        The engine itself is stateless beyond the counter (its RNG is an
        externally-owned stream whose state the checkpoint restores
        separately), so resuming is just: rebuild the population and
        protocols deterministically, overwrite their state, then call
        this so the next :meth:`run_round` executes as round
        ``round_index``.  Refuses to rewind a simulation that has
        already run or finished — resume targets a *fresh* engine.
        """
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        if self._finished:
            raise RuntimeError("cannot resume a finished simulation")
        if self.round_index > round_index:
            raise RuntimeError(
                f"cannot rewind round {self.round_index} to {round_index}; "
                "resume must start from a freshly built simulation"
            )
        self.round_index = round_index

    # -- convenience -----------------------------------------------------------

    def wake(self, node_id: int, *, recover: bool = False) -> None:
        """Wake a sleeping node and fire its protocols' on_wake hooks.

        ``recover=True`` additionally restarts a *failed* node (via
        :meth:`Node.recover`) before the hooks fire — the engine-level
        entry point for crash/restart churn schedules; plain ``wake``
        keeps refusing failed nodes so policies cannot undo a crash.
        """
        node = self.node(node_id)
        if recover and node.is_failed:
            node.recover()
        else:
            node.wake()
        if self.tracer.enabled:
            self.tracer.emit("pm_wake", self.round_index, node_id, recover=recover)
        if self.telemetry.enabled:
            self.telemetry.inc("engine/pm_wake")
        for name in self._node_protocol_names(node):
            node.protocol(name).on_wake(node, self)
