"""Component generators for synthetic demand series.

Each helper produces one ingredient of a realistic utilisation signal,
fully vectorised over ``(n_vms, n_rounds)``:

* :func:`ar1_series` — temporally autocorrelated noise (cloud workloads
  show strong short-range autocorrelation);
* :func:`diurnal_profile` — a day/night sinusoid with per-VM phase and
  amplitude;
* :func:`burst_mask` — sparse bursts with geometric durations (flash
  crowds, batch jobs).

:class:`SyntheticTraceBuilder` composes them into an
:class:`~repro.traces.base.ArrayTrace`; the Google-calibrated generator
in :mod:`repro.traces.google` is one particular parameterisation.
"""

from __future__ import annotations


import numpy as np

from repro.datacenter.resources import CPU, MEM, N_RESOURCES
from repro.traces.base import ArrayTrace
from repro.util.validation import check_fraction, check_in_range, check_non_negative

__all__ = ["ar1_series", "diurnal_profile", "burst_mask", "SyntheticTraceBuilder"]


def ar1_series(
    n_series: int,
    n_steps: int,
    phi: float,
    sigma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Zero-mean AR(1) processes: ``x_t = phi * x_{t-1} + eps_t``.

    ``eps_t ~ N(0, sigma^2)``; the initial state is drawn from the
    stationary distribution so the series has no warm-up transient.
    Returns shape ``(n_series, n_steps)``.
    """
    check_in_range(phi, "phi", -0.9999, 0.9999)
    check_non_negative(sigma, "sigma")
    if n_series <= 0 or n_steps <= 0:
        raise ValueError("n_series and n_steps must be > 0")
    out = np.empty((n_series, n_steps), dtype=np.float64)
    stationary_std = sigma / np.sqrt(1.0 - phi * phi) if sigma > 0 else 0.0
    out[:, 0] = rng.normal(0.0, stationary_std, size=n_series)
    if n_steps == 1:
        return out
    eps = rng.normal(0.0, sigma, size=(n_series, n_steps - 1))
    # The recurrence is inherently sequential in t but vectorised over series.
    for t in range(1, n_steps):
        out[:, t] = phi * out[:, t - 1] + eps[:, t - 1]
    return out


def diurnal_profile(
    n_series: int,
    n_steps: int,
    rounds_per_day: int,
    amplitude_range: tuple[float, float],
    rng: np.random.Generator,
    shared_phase_fraction: float = 0.0,
) -> np.ndarray:
    """Per-VM sinusoidal day/night swing, shape ``(n_series, n_steps)``.

    Each series gets an amplitude drawn from ``amplitude_range`` and a
    phase.  ``shared_phase_fraction`` of the VMs peak *together* (a small
    per-VM jitter around one global phase) — the defining property of
    production traces where interactive services follow the same working
    day.  Correlated peaks are what make consolidation dangerous: a PM
    packed tight at the trough overloads when its tenants rise in
    lockstep.  The remaining VMs get independent uniform phases.  The
    profile is zero-mean: it modulates a base level supplied elsewhere.
    """
    if rounds_per_day <= 0:
        raise ValueError(f"rounds_per_day must be > 0, got {rounds_per_day}")
    lo, hi = amplitude_range
    check_non_negative(lo, "amplitude lo")
    check_non_negative(hi, "amplitude hi")
    if hi < lo:
        raise ValueError(f"amplitude_range must be (lo, hi) with lo <= hi, got {amplitude_range}")
    check_fraction(shared_phase_fraction, "shared_phase_fraction")
    t = np.arange(n_steps, dtype=np.float64)[None, :]
    phase = rng.uniform(0.0, 2.0 * np.pi, size=(n_series, 1))
    shared = rng.random(size=(n_series, 1)) < shared_phase_fraction
    global_phase = rng.uniform(0.0, 2.0 * np.pi)
    jitter = rng.normal(0.0, 0.2, size=(n_series, 1))
    phase = np.where(shared, global_phase + jitter, phase)
    amplitude = rng.uniform(lo, hi, size=(n_series, 1))
    return amplitude * np.sin(2.0 * np.pi * t / rounds_per_day + phase)


def burst_mask(
    n_series: int,
    n_steps: int,
    start_probability: float,
    mean_duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boolean mask of burst intervals, shape ``(n_series, n_steps)``.

    Bursts start as a Bernoulli(``start_probability``) event per step and
    persist with probability ``1 - 1/mean_duration`` (geometric duration
    with the given mean).  Computed as a vectorised two-state Markov
    chain over time.
    """
    check_fraction(start_probability, "start_probability")
    if mean_duration < 1.0:
        raise ValueError(f"mean_duration must be >= 1, got {mean_duration}")
    continue_p = 1.0 - 1.0 / mean_duration
    mask = np.zeros((n_series, n_steps), dtype=bool)
    u = rng.random(size=(n_series, n_steps))
    state = np.zeros(n_series, dtype=bool)
    for t in range(n_steps):
        start = ~state & (u[:, t] < start_probability)
        cont = state & (u[:, t] < continue_p)
        state = start | cont
        mask[:, t] = state
    return mask


class SyntheticTraceBuilder:
    """Composable builder: base level + diurnal + AR(1) noise + bursts.

    The build result clips to [0, 1] — clipping at 1.0 is meaningful,
    not an artefact: a VM cannot demand more than its allocation.
    """

    def __init__(self, n_vms: int, n_rounds: int, rng: np.random.Generator) -> None:
        if n_vms <= 0 or n_rounds <= 0:
            raise ValueError("n_vms and n_rounds must be > 0")
        self.n_vms = n_vms
        self.n_rounds = n_rounds
        self._rng = rng
        self._cpu = np.zeros((n_vms, n_rounds), dtype=np.float64)
        self._mem = np.zeros((n_vms, n_rounds), dtype=np.float64)

    # -- CPU ------------------------------------------------------------------

    def with_cpu_base(self, means: np.ndarray) -> "SyntheticTraceBuilder":
        """Set per-VM base CPU levels (length ``n_vms``, fractions)."""
        means = np.asarray(means, dtype=np.float64)
        if means.shape != (self.n_vms,):
            raise ValueError(f"means must have shape ({self.n_vms},), got {means.shape}")
        self._cpu += means[:, None]
        return self

    def with_cpu_diurnal(
        self,
        rounds_per_day: int,
        amplitude_range: tuple[float, float],
        shared_phase_fraction: float = 0.0,
    ) -> "SyntheticTraceBuilder":
        self._cpu += diurnal_profile(
            self.n_vms,
            self.n_rounds,
            rounds_per_day,
            amplitude_range,
            self._rng,
            shared_phase_fraction=shared_phase_fraction,
        )
        return self

    def with_cpu_noise(self, phi: float, sigma: float) -> "SyntheticTraceBuilder":
        self._cpu += ar1_series(self.n_vms, self.n_rounds, phi, sigma, self._rng)
        return self

    def with_cpu_bursts(
        self,
        start_probability: float,
        mean_duration: float,
        magnitude: float,
    ) -> "SyntheticTraceBuilder":
        check_fraction(magnitude, "magnitude")
        mask = burst_mask(
            self.n_vms, self.n_rounds, start_probability, mean_duration, self._rng
        )
        self._cpu += magnitude * mask
        return self

    # -- memory ----------------------------------------------------------------

    def with_mem_base(self, means: np.ndarray) -> "SyntheticTraceBuilder":
        means = np.asarray(means, dtype=np.float64)
        if means.shape != (self.n_vms,):
            raise ValueError(f"means must have shape ({self.n_vms},), got {means.shape}")
        self._mem += means[:, None]
        return self

    def with_mem_noise(self, phi: float, sigma: float) -> "SyntheticTraceBuilder":
        self._mem += ar1_series(self.n_vms, self.n_rounds, phi, sigma, self._rng)
        return self

    def with_mem_tracking_cpu(self, coupling: float) -> "SyntheticTraceBuilder":
        """Add ``coupling`` * (cpu - cpu_mean): memory loosely follows CPU."""
        check_fraction(coupling, "coupling")
        centred = self._cpu - self._cpu.mean(axis=1, keepdims=True)
        self._mem += coupling * centred
        return self

    # -- finalise ---------------------------------------------------------------

    def build(self) -> ArrayTrace:
        data = np.empty((self.n_vms, self.n_rounds, N_RESOURCES), dtype=np.float64)
        data[:, :, CPU] = np.clip(self._cpu, 0.0, 1.0)
        data[:, :, MEM] = np.clip(self._mem, 0.0, 1.0)
        return ArrayTrace(data)
