"""Descriptive statistics of a trace — calibration sanity checks.

Used by tests to assert that the Google-like generator actually has the
statistics it claims (heavy tail, autocorrelation, diurnality) and by
`examples/trace_analysis.py` to characterise any loaded trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.resources import CPU, MEM
from repro.traces.base import ArrayTrace

__all__ = ["TraceStatistics", "summarize_trace", "lag1_autocorrelation"]


def lag1_autocorrelation(series: np.ndarray) -> float:
    """Mean lag-1 autocorrelation across rows of a (n, t) array.

    Rows with (near-)zero variance are skipped; returns 0.0 if all are.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] < 3:
        raise ValueError(f"need a (n, t>=3) array, got shape {arr.shape}")
    x = arr - arr.mean(axis=1, keepdims=True)
    var = (x * x).mean(axis=1)
    cov = (x[:, :-1] * x[:, 1:]).mean(axis=1)
    ok = var > 1e-12
    if not np.any(ok):
        return 0.0
    return float((cov[ok] / var[ok]).mean())


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of one trace."""

    n_vms: int
    n_rounds: int
    cpu_mean: float
    cpu_std: float
    cpu_p95: float
    cpu_autocorr: float
    mem_mean: float
    mem_std: float
    mem_autocorr: float
    cpu_mem_correlation: float
    mean_temporal_cv: float  # avg over VMs of (std over time / mean over time)

    def __str__(self) -> str:
        return (
            f"TraceStatistics(vms={self.n_vms}, rounds={self.n_rounds}, "
            f"cpu={self.cpu_mean:.3f}+/-{self.cpu_std:.3f} (p95={self.cpu_p95:.3f}, "
            f"ac1={self.cpu_autocorr:.3f}), mem={self.mem_mean:.3f}+/-{self.mem_std:.3f}, "
            f"corr={self.cpu_mem_correlation:.3f}, cv={self.mean_temporal_cv:.3f})"
        )


def summarize_trace(trace: ArrayTrace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for a trace."""
    cpu = trace.data[:, :, CPU]
    mem = trace.data[:, :, MEM]
    cpu_means = cpu.mean(axis=1)
    cpu_stds = cpu.std(axis=1)
    safe = cpu_means > 1e-9
    cv = float((cpu_stds[safe] / cpu_means[safe]).mean()) if np.any(safe) else 0.0
    mem_means = mem.mean(axis=1)
    if cpu_means.std() > 1e-12 and mem_means.std() > 1e-12:
        corr = float(np.corrcoef(cpu_means, mem_means)[0, 1])
    else:
        corr = 0.0
    return TraceStatistics(
        n_vms=trace.n_vms,
        n_rounds=trace.n_rounds,
        cpu_mean=float(cpu.mean()),
        cpu_std=float(cpu.std()),
        cpu_p95=float(np.percentile(cpu, 95.0)),
        cpu_autocorr=lag1_autocorrelation(cpu) if trace.n_rounds >= 3 else 0.0,
        mem_mean=float(mem.mean()),
        mem_std=float(mem.std()),
        mem_autocorr=lag1_autocorrelation(mem) if trace.n_rounds >= 3 else 0.0,
        cpu_mem_correlation=corr,
        mean_temporal_cv=cv,
    )
