"""Trace source interface and the array-backed implementation.

A trace answers one question per round: "what fraction of its nominal
spec does each VM demand, per resource, right now?"  Everything else —
generation, file parsing, calibration — happens up front, so the
per-round hot path is a single NumPy slice.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.datacenter.resources import N_RESOURCES

__all__ = ["TraceSource", "ArrayTrace"]


class TraceSource(abc.ABC):
    """Per-VM, per-round demand fractions."""

    @property
    @abc.abstractmethod
    def n_vms(self) -> int:
        """Number of VM demand series available."""

    @property
    @abc.abstractmethod
    def n_rounds(self) -> int:
        """Number of rounds of data before wrap-around."""

    @abc.abstractmethod
    def demands_at(self, round_index: int) -> np.ndarray:
        """Demand fractions at a round: shape ``(n_vms, N_RESOURCES)``.

        Implementations wrap modulo ``n_rounds`` so that long runs (e.g.
        the paper's 700 learning pre-rounds + 720 evaluation rounds) can
        replay a shorter dataset.
        """


class ArrayTrace(TraceSource):
    """A trace backed by a dense ``(n_vms, n_rounds, N_RESOURCES)`` array.

    The canonical implementation — generators and loaders all reduce to
    this.  The backing array is validated once and never copied again;
    ``demands_at`` returns views.
    """

    def __init__(self, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[2] != N_RESOURCES:
            raise ValueError(
                f"trace array must have shape (n_vms, n_rounds, {N_RESOURCES}), "
                f"got {arr.shape}"
            )
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValueError(f"trace array must be non-empty, got shape {arr.shape}")
        if np.any(arr < 0.0) or np.any(arr > 1.0):
            bad = arr[(arr < 0.0) | (arr > 1.0)]
            raise ValueError(
                f"trace fractions must be within [0, 1]; found values like {bad[:3]}"
            )
        if np.any(~np.isfinite(arr)):
            raise ValueError("trace contains non-finite values")
        self._data = arr

    @property
    def n_vms(self) -> int:
        return self._data.shape[0]

    @property
    def n_rounds(self) -> int:
        return self._data.shape[1]

    @property
    def data(self) -> np.ndarray:
        """The backing array (treat as read-only)."""
        return self._data

    def demands_at(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        return self._data[:, round_index % self.n_rounds, :]

    def subset(self, n_vms: int) -> "ArrayTrace":
        """A trace over the first ``n_vms`` series (shares memory)."""
        if not 1 <= n_vms <= self.n_vms:
            raise ValueError(f"n_vms must be in [1, {self.n_vms}], got {n_vms}")
        out = ArrayTrace.__new__(ArrayTrace)
        out._data = self._data[:n_vms]
        return out

    def __repr__(self) -> str:
        return f"ArrayTrace(n_vms={self.n_vms}, n_rounds={self.n_rounds})"
