"""CSV trace round-tripping.

Allows the *real* Google cluster trace (pre-processed into per-VM
utilisation series) to be dropped into the simulation unchanged, and
allows generated traces to be archived alongside experiment results.

Format: plain CSV, one row per (vm, round) sample::

    vm_id,round,cpu,mem
    0,0,0.231,0.402
    0,1,0.245,0.401
    ...

The grid must be dense: every vm must have every round.  Values are
fractions in [0, 1].
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.datacenter.resources import CPU, MEM, N_RESOURCES
from repro.traces.base import ArrayTrace

__all__ = ["CsvTrace", "write_trace_csv"]

_HEADER = ["vm_id", "round", "cpu", "mem"]


def write_trace_csv(trace: ArrayTrace, path: Union[str, Path]) -> None:
    """Serialise a trace to the dense CSV format above."""
    path = Path(path)
    data = trace.data
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for vm_id in range(trace.n_vms):
            for rnd in range(trace.n_rounds):
                writer.writerow(
                    [
                        vm_id,
                        rnd,
                        f"{data[vm_id, rnd, CPU]:.6f}",
                        f"{data[vm_id, rnd, MEM]:.6f}",
                    ]
                )


class CsvTrace(ArrayTrace):
    """An :class:`ArrayTrace` parsed from the dense CSV format."""

    def __init__(self, path: Union[str, Path]) -> None:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"trace file not found: {path}")
        samples: dict[tuple[int, int], tuple[float, float]] = {}
        max_vm = -1
        max_round = -1
        with path.open() as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != _HEADER:
                raise ValueError(
                    f"unexpected header {header!r}; expected {_HEADER!r}"
                )
            for line_no, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != 4:
                    raise ValueError(f"{path}:{line_no}: expected 4 fields, got {len(row)}")
                try:
                    vm_id, rnd = int(row[0]), int(row[1])
                    cpu, mem = float(row[2]), float(row[3])
                except ValueError as exc:
                    raise ValueError(f"{path}:{line_no}: unparsable row {row!r}") from exc
                if (vm_id, rnd) in samples:
                    raise ValueError(f"{path}:{line_no}: duplicate sample for vm {vm_id} round {rnd}")
                samples[(vm_id, rnd)] = (cpu, mem)
                max_vm = max(max_vm, vm_id)
                max_round = max(max_round, rnd)

        if max_vm < 0:
            raise ValueError(f"{path}: empty trace")
        n_vms, n_rounds = max_vm + 1, max_round + 1
        if len(samples) != n_vms * n_rounds:
            raise ValueError(
                f"{path}: sparse grid — {len(samples)} samples for "
                f"{n_vms} VMs x {n_rounds} rounds"
            )
        data = np.empty((n_vms, n_rounds, N_RESOURCES), dtype=np.float64)
        for (vm_id, rnd), (cpu, mem) in samples.items():
            data[vm_id, rnd, CPU] = cpu
            data[vm_id, rnd, MEM] = mem
        super().__init__(data)
