"""Google-cluster-like workload generator.

Substitution for the paper's Google Cluster VM traces [12] (see
DESIGN.md §3).  Parameters default to the published characteristics of
the 2011 Google trace as reported in the analyses accompanying it
(Reiss et al., "Heterogeneity and dynamicity of clouds at scale", SoCC
2012) and in the CloudSim/PlanetLab tradition the paper's baselines come
from:

* per-task mean CPU usage is low and heavy-tailed — most tasks use a
  small fraction of their request, a few are hot.  We draw per-VM base
  CPU from a lognormal clipped to [0.02, 0.9] with median ~0.2;
* usage is strongly autocorrelated in time (AR(1), phi ~0.9 at 2-minute
  sampling) with visible diurnal swing;
* short high-utilisation bursts occur (flash crowds / batch stages);
* memory usage is much flatter than CPU, weakly correlated with it.

Every knob is exposed through :class:`GoogleTraceParams` so experiments
can deviate (e.g. our "bursty workload" extension bench cranks
``burst_start_p`` up).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.base import ArrayTrace
from repro.traces.synthetic import SyntheticTraceBuilder
from repro.util.validation import check_fraction, check_positive

__all__ = ["GoogleTraceParams", "GoogleLikeTraceGenerator"]


@dataclass(frozen=True)
class GoogleTraceParams:
    """Calibration knobs for the Google-like generator."""

    # Base CPU level: lognormal(mu, sigma) clipped to [cpu_min, cpu_max].
    # Median ~exp(-1.05) ~= 0.35 of the VM's allocation: VMs "utilize
    # resources much less than their initial allocation" but enough that
    # a consolidated data centre runs close to capacity at peak hours —
    # the regime the paper's comparison operates in.
    cpu_lognormal_mu: float = -1.05
    cpu_lognormal_sigma: float = 0.55
    cpu_min: float = 0.05
    cpu_max: float = 0.90
    # Temporal structure.
    ar1_phi: float = 0.90
    ar1_sigma: float = 0.05
    rounds_per_day: int = 720  # 2-minute rounds -> 720 per day
    diurnal_amplitude: tuple = (0.05, 0.20)
    #: Fraction of VMs whose diurnal peaks coincide (working-day services).
    diurnal_shared_fraction: float = 0.6
    # Bursts.
    burst_start_p: float = 0.008
    burst_mean_duration: float = 10.0
    burst_magnitude: float = 0.40
    # Memory.  Beta(2.5, 7.5): mean 0.25, sd ~0.13 — memory runs below
    # CPU so the binding, time-varying resource is CPU (as in the Google
    # trace, where memory usage is modest and flat relative to request).
    mem_beta_a: float = 2.5
    mem_beta_b: float = 7.5
    mem_ar1_phi: float = 0.97
    mem_ar1_sigma: float = 0.006
    mem_cpu_coupling: float = 0.15

    def __post_init__(self) -> None:
        check_fraction(self.cpu_min, "cpu_min")
        check_fraction(self.cpu_max, "cpu_max")
        if self.cpu_min >= self.cpu_max:
            raise ValueError("cpu_min must be < cpu_max")
        check_positive(self.mem_beta_a, "mem_beta_a")
        check_positive(self.mem_beta_b, "mem_beta_b")
        check_fraction(self.burst_magnitude, "burst_magnitude")


class GoogleLikeTraceGenerator:
    """Generates :class:`ArrayTrace` s with Google-trace-like statistics."""

    def __init__(self, params: GoogleTraceParams | None = None) -> None:
        self.params = params if params is not None else GoogleTraceParams()

    def generate(
        self, n_vms: int, n_rounds: int, rng: np.random.Generator
    ) -> ArrayTrace:
        """Build a trace of ``n_vms`` series over ``n_rounds`` rounds."""
        p = self.params
        cpu_base = np.clip(
            rng.lognormal(p.cpu_lognormal_mu, p.cpu_lognormal_sigma, size=n_vms),
            p.cpu_min,
            p.cpu_max,
        )
        mem_base = rng.beta(p.mem_beta_a, p.mem_beta_b, size=n_vms)

        builder = (
            SyntheticTraceBuilder(n_vms, n_rounds, rng)
            .with_cpu_base(cpu_base)
            .with_cpu_diurnal(
                p.rounds_per_day,
                p.diurnal_amplitude,
                shared_phase_fraction=p.diurnal_shared_fraction,
            )
            .with_cpu_noise(p.ar1_phi, p.ar1_sigma)
            .with_cpu_bursts(p.burst_start_p, p.burst_mean_duration, p.burst_magnitude)
            .with_mem_base(mem_base)
            .with_mem_noise(p.mem_ar1_phi, p.mem_ar1_sigma)
            .with_mem_tracking_cpu(p.mem_cpu_coupling)
        )
        return builder.build()

    @classmethod
    def bursty(cls) -> "GoogleLikeTraceGenerator":
        """A burst-heavy variant — the paper's future-work scenario."""
        return cls(
            GoogleTraceParams(
                burst_start_p=0.02,
                burst_mean_duration=15.0,
                burst_magnitude=0.5,
                ar1_sigma=0.05,
            )
        )

    @classmethod
    def steady(cls) -> "GoogleLikeTraceGenerator":
        """A low-variance variant where static thresholds should do fine —
        useful as a control in ablations."""
        return cls(
            GoogleTraceParams(
                ar1_sigma=0.01,
                diurnal_amplitude=(0.0, 0.03),
                diurnal_shared_fraction=0.0,
                burst_start_p=0.0005,
                burst_magnitude=0.15,
            )
        )
