"""Workload traces driving per-VM resource demand.

The paper replays CPU/memory utilisation from the Google Cluster traces
[12].  That dataset cannot be redistributed (and this environment has no
network), so — per the reproduction's substitution rule — we provide:

* :class:`~repro.traces.google.GoogleLikeTraceGenerator`, a synthetic
  generator calibrated to the published statistics of the 2011 Google
  trace (heavy-tailed per-task mean CPU around 20-30% of request, strong
  temporal autocorrelation, diurnal swing, occasional bursts, weak
  CPU-memory correlation, memory much flatter than CPU);
* :class:`~repro.traces.loader.CsvTrace` so the real trace, pre-processed
  into per-VM (cpu, mem) fraction series, can be dropped in unchanged;
* low-level component generators in :mod:`~repro.traces.synthetic` for
  custom workloads (e.g. the "bursty patterns" the paper leaves as
  future work — exercised by our ablation benches).

All sources implement :class:`~repro.traces.base.TraceSource`:
``demands_at(round) -> (n_vms, N_RESOURCES)`` fractions in [0, 1].
"""

from repro.traces.base import TraceSource, ArrayTrace
from repro.traces.synthetic import (
    ar1_series,
    diurnal_profile,
    burst_mask,
    SyntheticTraceBuilder,
)
from repro.traces.google import GoogleLikeTraceGenerator, GoogleTraceParams
from repro.traces.loader import CsvTrace, write_trace_csv
from repro.traces.stats import TraceStatistics, summarize_trace

__all__ = [
    "TraceSource",
    "ArrayTrace",
    "ar1_series",
    "diurnal_profile",
    "burst_mask",
    "SyntheticTraceBuilder",
    "GoogleLikeTraceGenerator",
    "GoogleTraceParams",
    "CsvTrace",
    "write_trace_csv",
    "TraceStatistics",
    "summarize_trace",
]
