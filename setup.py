"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools predates reliable PEP 660 editable installs (metadata lives
in pyproject.toml).
"""

from setuptools import setup

setup()
